// Package qexec is the query-execution subsystem between the HTTP layer
// and the BePI engine — the layer that turns "preprocess once, answer many
// queries fast" into served throughput. It combines:
//
//   - a worker pool (sized to GOMAXPROCS by default) where each worker owns
//     a reusable core.Workspace, so steady-state queries allocate nothing
//     but their result vectors;
//   - a batch scheduler that coalesces concurrently-arriving queries into
//     multi-RHS block-elimination solves (core.Engine.QueryVectorBatch),
//     amortizing the H11 back-substitutions and the H12/H21/H31/H32 SpMVs
//     across the batch;
//   - an LRU score cache with singleflight deduplication, so a hot seed
//     costs one solve no matter how many requests race for it;
//   - a bounded top-k path: TopK halts each Schur solve on a certified
//     score-error bound as soon as the top-k SET is provably settled
//     (core.Engine.TopKBoundedBatch), batches k-class requests separately
//     from full-vector ones, and serves any k from a cached or in-flight
//     full vector without a solve;
//   - admission control: a bounded queue that sheds load with
//     ErrOverloaded when full, and per-query deadlines threaded down into
//     the iterative Schur solver via context.Context.
//
// Counters for all of the above are exposed through Metrics for the
// server's /metrics endpoint, and every query is observed by an
// internal/obs Observer: latency/queue-wait/iteration/residual histograms,
// sampled per-query stage traces (admission → batch assembly → solve →
// rank), and a slow-query log.
package qexec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bepi/internal/core"
	"bepi/internal/obs"
)

// Errors reported by admission control.
var (
	// ErrOverloaded means the bounded queue was full; the caller should
	// shed the request (HTTP 429).
	ErrOverloaded = errors.New("qexec: queue full, request shed")
	// ErrClosed means the executor has been shut down.
	ErrClosed = errors.New("qexec: executor closed")
	// ErrSolvePanicked means the engine solve panicked under a request; the
	// panic was recovered by the worker so the pool (and every coalesced
	// waiter) keeps running, and the request fails with this error.
	ErrSolvePanicked = errors.New("qexec: solve panicked")
)

// Config sizes the executor. Zero values select defaults; CacheEntries < 0
// disables the cache.
type Config struct {
	// Workers is the pool size; default runtime.GOMAXPROCS(0).
	Workers int
	// MaxBatch caps how many queries one worker coalesces into a single
	// multi-RHS solve; default 8.
	MaxBatch int
	// BatchWindow is how long a worker holding a non-full batch waits for
	// more queries to arrive before solving; default 200µs. Zero after
	// defaulting is allowed via -1: solve immediately, batching only what
	// is already queued.
	BatchWindow time.Duration
	// QueueDepth bounds the admission queue; requests beyond it are shed
	// with ErrOverloaded. Default 4×Workers×MaxBatch.
	QueueDepth int
	// CacheEntries bounds the LRU score cache; default 1024, negative
	// disables caching.
	CacheEntries int
	// Timeout, if positive, is the per-query deadline applied on
	// submission and enforced inside the iterative solver.
	Timeout time.Duration
	// CopyCachedScores makes cache hits return a private copy of the
	// cached vector instead of the shared read-only one. Costs one O(N)
	// copy per hit; turn it on when callers need to mutate Result.Scores.
	CopyCachedScores bool
	// Parallelism, when non-zero, re-points the engine's compute pool
	// (core.Engine.SetParallelism) before the workers start: the sparse
	// kernels under each solve then use up to that many cores. Zero keeps
	// the engine's current pool (the shared GOMAXPROCS pool for freshly
	// loaded indexes). With Workers already sized to GOMAXPROCS the pool
	// is usually saturated by concurrent queries alone; raising kernel
	// parallelism mainly helps low-concurrency/large-graph serving — see
	// DESIGN.md for guidance on capping it.
	Parallelism int
	// Obs receives the executor's telemetry: latency/queue/iteration
	// histograms, per-query stage traces, and the slow-query log. Nil
	// selects obs.New with a 256-entry trace ring sampling one query in
	// DefaultTraceSample — histograms are always-on (sub-1% of the hot
	// path; see BenchmarkQexecThroughput qexec vs noobs), tracing is
	// sampled because its allocations are not. Pass obs.Disabled to turn
	// the layer off, or a custom observer with TraceSample 1 to trace
	// every query while debugging.
	Obs *obs.Observer
	// FullSolveTopK disables the bounded top-k path: TopK then always
	// solves to full tolerance and ranks (the pre-bounded behavior). The
	// bounded path returns the provably identical top-k set, so this is an
	// operational escape hatch / A-B knob, not a correctness switch.
	FullSolveTopK bool
}

// DefaultTraceSample is the default observer's trace sampling rate: one
// query in this many gets stage spans recorded into /debug/traces.
const DefaultTraceSample = 64

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 200 * time.Microsecond
	} else if c.BatchWindow < 0 {
		c.BatchWindow = 0
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers * c.MaxBatch
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.Obs == nil {
		c.Obs = obs.New(obs.Options{TraceSample: DefaultTraceSample})
	}
	return c
}

// request is one query in flight through the pool. eng is the engine
// snapshot the query vector was built against: the worker solves on it even
// if SwapEngine replaces the serving engine while the request queues, so a
// batch never mixes engines (or query-vector lengths) across a swap.
type request struct {
	ctx   context.Context
	q     []float64
	eng   *core.Engine
	done  chan struct{}
	res   []float64
	stats core.QueryStats
	err   error

	// k > 0 marks a bounded top-k request: the worker routes it through
	// Engine.TopKBoundedBatch with `exclude` left out of the ranking, and
	// fills top/early/saved alongside res. Batches are k-class-homogeneous
	// — top-k and full-vector requests never share a multi-RHS solve, so a
	// full-vector batch is never held hostage by bound checks and a top-k
	// batch stops each member on its own certificate.
	k       int
	exclude int
	top     []core.Ranked
	early   bool
	saved   int

	// Observability: when the request was enqueued and dequeued (queue-wait
	// histogram and "admission" span), and the sampled trace it belongs to,
	// nil for untraced queries.
	enq time.Time
	deq time.Time
	at  *obs.ActiveTrace
}

// Result is a completed query: the score vector (shared and read-only when
// it came from the cache), engine stats, and how the subsystem served it.
type Result struct {
	// Scores is indexed by original node id. When Cached or Coalesced is
	// true it is shared with other callers and with the cache itself, and
	// MUST NOT be mutated: writing through it silently corrupts every
	// future hit for the same seed. Callers that need a private, mutable
	// vector set Config.CopyCachedScores (cache hits then copy on the way
	// out) or copy it themselves.
	Scores []float64
	Stats  core.QueryStats
	// Cached means the result came from the LRU cache without any solve.
	Cached bool
	// Coalesced means this request piggybacked on an identical in-flight
	// query (singleflight) instead of solving on its own.
	Coalesced bool
	// Generation is the engine generation the scores belong to (see
	// Executor.Generation). Cache hits, coalesced joins, and fresh solves
	// all carry the generation of the engine they were computed against, so
	// callers that must not mix scores across an engine swap — the cluster
	// coordinator's scatter-gather merge in particular — can compare tags
	// instead of guessing from timing.
	Generation uint64
	// EarlyStopped (TopK results only) means the scores come from a
	// bound-certified early-stopped solve: the top-k SET is exact, but
	// Scores are only within the certified radius of the true values —
	// they are never cached or served as full-tolerance vectors.
	EarlyStopped bool
	// SavedIters (early-stopped TopK results only) estimates the solver
	// iterations the early stop skipped.
	SavedIters int
}

// engineState is the executor's current engine together with the
// generation it belongs to, published as one unit so readers can never see
// a new engine with an old generation (or vice versa).
type engineState struct {
	eng *core.Engine
	gen uint64
}

// Executor is the query-execution subsystem over one preprocessed engine.
// It is safe for concurrent use. The engine can be replaced at runtime with
// SwapEngine (the dynamic-graph rebuild path); every cached or in-flight
// result is generation-tagged so nothing solved against one engine is ever
// served as an answer from another.
type Executor struct {
	eng atomic.Pointer[engineState]
	cfg Config
	obs *obs.Observer

	reqs chan *request
	mu   sync.RWMutex // guards closed vs. sends on reqs
	done bool
	wg   sync.WaitGroup

	cache *lruCache // nil when disabled

	fmu       sync.Mutex
	flights   map[int]*flight   // singleflight per seed (full-vector solves)
	tkFlights map[tkKey]*tkFlight // singleflight per (seed, k) bounded solve

	m counters
}

// flight is one in-progress single-seed solve that duplicate requests wait
// on. gen pins the engine generation the solve runs under: requests on a
// later generation never coalesce onto it.
type flight struct {
	done  chan struct{}
	gen   uint64
	res   []float64
	stats core.QueryStats
	err   error
}

// tkKey identifies one bounded top-k singleflight: requests for the same
// seed but different k have different stopping points, so they only
// coalesce with their exact (seed, k, generation) twins — or with a full
// solve for the seed, whose finished vector answers any k.
type tkKey struct {
	seed, k int
	gen     uint64
}

// tkFlight is one in-progress bounded top-k solve.
type tkFlight struct {
	done chan struct{}
	top  []core.Ranked
	res  Result
	err  error
}

// New starts the executor's worker pool over a preprocessed engine.
// Call Close to stop it.
func New(eng *core.Engine, cfg Config) *Executor {
	cfg = cfg.withDefaults()
	e := &Executor{
		cfg:       cfg,
		obs:       cfg.Obs,
		reqs:      make(chan *request, cfg.QueueDepth),
		flights:   make(map[int]*flight),
		tkFlights: make(map[tkKey]*tkFlight),
	}
	e.attach(eng)
	e.eng.Store(&engineState{eng: eng, gen: 1})
	if cfg.CacheEntries > 0 {
		e.cache = newLRUCache(cfg.CacheEntries, cfg.CopyCachedScores)
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	// Executor construction is serving warmup: calibrate the process-wide
	// kernel knobs (prefetch distance) before query traffic arrives. Cheap
	// after the first executor.
	core.WarmupKernels()
	return e
}

// attach points an engine's telemetry hooks and compute pool at this
// executor; called for the initial engine and for every SwapEngine.
func (e *Executor) attach(eng *core.Engine) {
	if e.cfg.Parallelism != 0 {
		eng.SetParallelism(e.cfg.Parallelism)
	}
	// Live convergence telemetry: one atomic add per solver iteration.
	// (The hook is engine-wide; a second executor over the same engine
	// would re-point it.)
	eng.SetIterHook(func(int, float64) { e.obs.SolverIters.Add(1) })
	// Per-kernel telemetry: timing and bytes-streamed for each Schur
	// operator and preconditioner application. Same engine-wide caveat.
	eng.SetKernelHook(func(kernel string, seconds float64, bytes int64) {
		switch kernel {
		case core.KernelSchur:
			e.obs.SchurApply.Observe(seconds)
		case core.KernelPrecond:
			e.obs.PrecondApply.Observe(seconds)
		}
		e.obs.KernelBytes.Add(bytes)
		e.obs.KernelNanos.Add(int64(seconds * 1e9))
	})
}

// engine snapshots the current engine and its generation.
func (e *Executor) engine() (*core.Engine, uint64) {
	st := e.eng.Load()
	return st.eng, st.gen
}

// Engine returns the engine currently being served.
func (e *Executor) Engine() *core.Engine { return e.eng.Load().eng }

// Generation returns the current engine generation. It starts at 1 and is
// bumped by every SwapEngine.
func (e *Executor) Generation() uint64 { return e.eng.Load().gen }

// SwapEngine atomically replaces the engine the executor serves from — the
// dynamic-graph rebuild path. The swap is the only coordination queries
// ever see: requests already submitted keep solving against the engine
// they captured, but their results are tagged with the old generation, so
// neither the cache nor the singleflight map can serve them to queries
// that arrive after the swap. The score cache is purged eagerly (stale
// vectors free immediately) and the generation tag covers the remaining
// race of a pre-swap solve completing post-swap.
//
// SwapEngine is safe to call concurrently with queries. The new engine
// inherits the executor's telemetry hooks and, when Config.Parallelism is
// set, its compute-pool setting.
func (e *Executor) SwapEngine(eng *core.Engine) {
	cur := e.eng.Load()
	if cur.eng == eng {
		return
	}
	e.attach(eng)
	for {
		if e.eng.CompareAndSwap(cur, &engineState{eng: eng, gen: cur.gen + 1}) {
			break
		}
		cur = e.eng.Load()
		if cur.eng == eng {
			return
		}
	}
	e.m.swaps.Add(1)
	e.obs.Events.Record("engine_swap", "", map[string]string{
		"generation": strconv.FormatUint(e.eng.Load().gen, 10),
	})
	if e.cache != nil {
		e.cache.purge()
	}
	// Drop the stale flights: post-swap arrivals start fresh solves
	// instead of waiting on old-generation results. The old leaders still
	// hold their flight pointers and only delete map entries that are
	// identically theirs, so clearing here cannot strand a new flight.
	e.fmu.Lock()
	clear(e.flights)
	clear(e.tkFlights)
	e.fmu.Unlock()
}

// Config returns the executor's effective (defaulted) configuration.
func (e *Executor) Config() Config { return e.cfg }

// Observer exposes the executor's telemetry sinks (for the server's
// /metrics and /debug/traces endpoints).
func (e *Executor) Observer() *obs.Observer { return e.obs }

// Close stops accepting work, lets queued requests drain, and waits for the
// workers to exit. It is idempotent.
func (e *Executor) Close() {
	e.mu.Lock()
	if e.done {
		e.mu.Unlock()
		return
	}
	e.done = true
	close(e.reqs)
	e.mu.Unlock()
	e.wg.Wait()
}

// worker owns one reusable workspace and runs coalesced batches until the
// queue closes. Batches are homogeneous in engine AND k-class: a request
// submitted before an engine swap is solved on the engine it captured, so
// a swap mid-queue splits a batch rather than mixing generations, and
// bounded top-k requests never share a multi-RHS solve with full-vector
// requests (carry holds the first request of the next batch when a split
// happens). The workspace is engine-bound and rebuilt when the worker
// moves to a new engine.
func (e *Executor) worker() {
	defer e.wg.Done()
	var ws *core.Workspace
	var wsEng *core.Engine
	batch := make([]*request, 0, e.cfg.MaxBatch)
	ctxs := make([]context.Context, 0, e.cfg.MaxBatch)
	qs := make([][]float64, 0, e.cfg.MaxBatch)
	var carry *request
	for {
		var r *request
		if carry != nil {
			r, carry = carry, nil
		} else {
			var ok bool
			r, ok = <-e.reqs
			if !ok {
				return
			}
			r.deq = e.obs.Now()
		}
		batch = append(batch[:0], r)
		// Take whatever is already queued, then hold the batch open for
		// the batch window to let concurrent arrivals coalesce.
	drain:
		for len(batch) < e.cfg.MaxBatch {
			select {
			case r2, ok := <-e.reqs:
				if !ok {
					break drain
				}
				r2.deq = e.obs.Now()
				if r2.eng != r.eng || (r2.k > 0) != (r.k > 0) {
					carry = r2
					break drain
				}
				batch = append(batch, r2)
			default:
				break drain
			}
		}
		if carry == nil && len(batch) < e.cfg.MaxBatch && e.cfg.BatchWindow > 0 {
			timer := time.NewTimer(e.cfg.BatchWindow)
		window:
			for len(batch) < e.cfg.MaxBatch {
				select {
				case r2, ok := <-e.reqs:
					if !ok {
						break window
					}
					r2.deq = e.obs.Now()
					if r2.eng != r.eng || (r2.k > 0) != (r.k > 0) {
						carry = r2
						break window
					}
					batch = append(batch, r2)
				case <-timer.C:
					break window
				}
			}
			timer.Stop()
		}

		e.m.observeBatch(len(batch))
		tSolve := e.obs.Now()
		ctxs = ctxs[:0]
		qs = qs[:0]
		for _, br := range batch {
			e.obs.QueueWait.Observe(br.deq.Sub(br.enq).Seconds())
			if br.at != nil {
				br.at.AddSpan("admission", br.enq, br.deq)
				br.at.AddSpan("batch", br.deq, tSolve)
				br.at.SetBatch(len(batch))
			}
			ctxs = append(ctxs, br.ctx)
			qs = append(qs, br.q)
		}
		if wsEng != r.eng {
			ws = r.eng.NewWorkspace()
			wsEng = r.eng
		}
		var panicErr error
		if r.k > 0 {
			panicErr = e.solveTopKBatch(r.eng, batch, ctxs, qs, ws)
		} else {
			panicErr = e.solveBatch(r.eng, batch, ctxs, qs, ws)
		}
		if panicErr != nil {
			// The engine panicked mid-solve: fail the whole batch instead
			// of hanging it, discard the workspace (its buffers are in an
			// unknown state), and keep the worker alive for the next batch.
			e.obs.Events.Record("solve_panic", r.at.TraceID(), map[string]string{
				"batch": strconv.Itoa(len(batch)),
				"error": panicErr.Error(),
			})
			wsEng, ws = nil, nil
			for _, br := range batch {
				br.err = panicErr
				close(br.done)
			}
			continue
		}
		tEnd := e.obs.Now()
		e.obs.BatchLatency.Observe(tEnd.Sub(tSolve).Seconds())
		for _, br := range batch {
			if br.at != nil {
				br.at.AddSpan("solve", tSolve, tEnd)
				br.at.SetSolve(br.stats.Iterations, br.stats.Residual)
				addStageSpans(br.at, tSolve, br.stats.Stages)
			}
			if br.err == nil {
				e.obs.Iterations.Observe(float64(br.stats.Iterations))
				e.obs.Residual.Observe(br.stats.Residual)
			}
			close(br.done)
		}
	}
}

// addStageSpans translates the engine's per-phase durations (permute,
// forward substitution, iterative Schur solve, back reconstruction) into
// child spans laid end to end from the solve start — the engine runs the
// phases sequentially, so cumulative offsets reconstruct the layout the
// coordinator's trace tree renders under the "solve" span.
func addStageSpans(at *obs.ActiveTrace, tSolve time.Time, st core.StageTimings) {
	t := tSolve
	for _, ph := range [...]struct {
		name string
		d    time.Duration
	}{{"permute", st.Permute}, {"forward", st.Forward}, {"schur", st.Solve}, {"back", st.Back}} {
		if ph.d <= 0 {
			continue
		}
		at.AddSpan(ph.name, t, t.Add(ph.d))
		t = t.Add(ph.d)
	}
}

// solveBatch runs the multi-RHS engine solve with a panic barrier: a panic
// inside the engine (or a hook it calls) is recovered and reported as an
// ErrSolvePanicked-wrapped error so the batch fails loudly instead of
// killing the worker and hanging every waiter. Results land in the
// requests positionally.
func (e *Executor) solveBatch(eng *core.Engine, batch []*request, ctxs []context.Context, qs [][]float64, ws *core.Workspace) (panicErr error) {
	defer func() {
		if p := recover(); p != nil {
			e.m.panics.Add(1)
			panicErr = fmt.Errorf("%w: %v", ErrSolvePanicked, p)
		}
	}()
	res, stats, errs := eng.QueryVectorBatch(ctxs, qs, ws)
	for i, br := range batch {
		br.res, br.stats, br.err = res[i], stats[i], errs[i]
	}
	return nil
}

// solveTopKBatch runs a k-class batch through the bounded top-k engine
// path, with the same panic barrier as solveBatch. Each member's Schur
// solve halts on its own gap certificate, so the batch completes when its
// last unresolved member does — nobody waits past that.
func (e *Executor) solveTopKBatch(eng *core.Engine, batch []*request, ctxs []context.Context, qs [][]float64, ws *core.Workspace) (panicErr error) {
	defer func() {
		if p := recover(); p != nil {
			e.m.panics.Add(1)
			panicErr = fmt.Errorf("%w: %v", ErrSolvePanicked, p)
		}
	}()
	ks := make([]int, len(batch))
	excl := make([]int, len(batch))
	for i, br := range batch {
		ks[i], excl[i] = br.k, br.exclude
	}
	tops, res, stats, errs := eng.TopKBoundedBatch(ctxs, qs, excl, ks, ws)
	for i, br := range batch {
		br.top, br.res, br.err = tops[i], res[i], errs[i]
		br.stats = stats[i].QueryStats
		br.early, br.saved = stats[i].EarlyStopped, stats[i].SavedIters
		if errs[i] == nil {
			e.m.topk.Add(1)
			if stats[i].EarlyStopped {
				e.m.early.Add(1)
				e.obs.TopKSaved.Observe(float64(stats[i].SavedIters))
			}
		}
	}
	return nil
}

// queryObs is the observability state of one query moving through the
// executor: its start time, its sampled trace (nil when untraced), and
// whether the trace had to be abandoned because the requester gave up
// while a worker still held it.
type queryObs struct {
	start     time.Time
	at        *obs.ActiveTrace
	abandoned bool
}

// startQuery opens the query's observation window. ctx may carry a
// propagated trace context (obs.WithTrace, set by the HTTP binding from an
// X-Bepi-Trace header or by the cluster coordinator's root span): such
// queries are traced unconditionally and their records attach under the
// remote parent, so a coordinator-rooted trace always contains the owning
// shard's qexec and solve-stage spans.
func (e *Executor) startQuery(ctx context.Context, kind string, seed int) queryObs {
	start := e.obs.Now()
	return queryObs{start: start, at: e.obs.Tracer.BeginCtx(ctx, kind, seed)}
}

// span closes a stage span on the sampled trace, reading the clock only
// when the query is actually traced.
func (e *Executor) span(at *obs.ActiveTrace, name string, from time.Time) {
	if at != nil {
		at.AddSpan(name, from, e.obs.Now())
	}
}

// finish records the query's completion: the latency histogram, the trace
// ring, and the slow-query log. An abandoned trace (deadline hit while a
// worker still held it) is dropped rather than raced.
func (e *Executor) finish(qo *queryObs, kind string, seed int, res *Result, err error) {
	end := e.obs.Now()
	total := end.Sub(qo.start)
	e.obs.QueryLatency.Observe(total.Seconds())
	at := qo.at
	if qo.abandoned {
		at = nil
	}
	if at != nil {
		if res.Generation > 0 {
			at.SetTag("generation", strconv.FormatUint(res.Generation, 10))
		}
		at.SetErr(err)
		at.Finish(end)
	}
	if sl := e.obs.SlowLog; sl.Slow(total) {
		sl.Log(kind, seed, at.TraceID(), total, res.Cached, res.Coalesced,
			res.Stats.Iterations, res.Stats.Residual, err, at.Spans())
		e.obs.Events.Record("slow_query", at.TraceID(), map[string]string{
			"kind":  kind,
			"seed":  strconv.Itoa(seed),
			"total": total.String(),
		})
	}
}

// submit enqueues a prepared request, shedding with ErrOverloaded when the
// queue is full and ErrClosed after shutdown.
func (e *Executor) submit(r *request) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.done {
		return ErrClosed
	}
	select {
	case e.reqs <- r:
		return nil
	default:
		e.m.shed.Add(1)
		e.obs.Events.Record("admission_reject", r.at.TraceID(), nil)
		return ErrOverloaded
	}
}

// do runs one query through admission control and the pool, honoring the
// per-query deadline both while waiting and inside the solver. eng is the
// engine snapshot the query vector was built against.
func (e *Executor) do(ctx context.Context, q []float64, eng *core.Engine, qo *queryObs) ([]float64, core.QueryStats, error) {
	if e.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.Timeout)
		defer cancel()
	}
	r := &request{ctx: ctx, q: q, eng: eng, done: make(chan struct{}), at: qo.at, enq: e.obs.Now()}
	if err := e.await(ctx, r, qo); err != nil {
		return nil, core.QueryStats{}, err
	}
	return r.res, r.stats, r.err
}

// await submits a prepared request and waits for the worker or the
// caller's context, whichever ends first. A nil return means the worker
// completed the request (r.err may still carry the solve's error).
func (e *Executor) await(ctx context.Context, r *request, qo *queryObs) error {
	if err := e.submit(r); err != nil {
		return err
	}
	select {
	case <-r.done:
		return nil
	case <-ctx.Done():
		// The worker sees the same context and aborts the solve; the
		// requester does not wait for it. The worker may still append
		// spans to the trace afterwards, so the trace is abandoned
		// (never finished) instead of raced.
		qo.abandoned = true
		return ctx.Err()
	}
}

// run is the execution core of a single-seed query: cache hit, coalesce
// onto an identical in-flight solve, or solve through the batched pool.
// eng and gen are the engine snapshot the query runs against; cache
// lookups, cache fills, and singleflight joins all carry gen so nothing
// crosses an engine swap.
func (e *Executor) run(ctx context.Context, seed int, eng *core.Engine, gen uint64, qo *queryObs) (Result, error) {
	if e.cache != nil {
		scores, ok := e.cache.get(seed, gen)
		e.span(qo.at, "cache", qo.start)
		if ok {
			e.m.hits.Add(1)
			qo.at.SetCached()
			return Result{Scores: scores, Cached: true, Generation: gen}, nil
		}
	}
	e.m.misses.Add(1)

	e.fmu.Lock()
	if f, ok := e.flights[seed]; ok && f.gen == gen {
		e.fmu.Unlock()
		e.m.coalesced.Add(1)
		tw := e.obs.Now()
		select {
		case <-f.done:
			e.span(qo.at, "coalesce", tw)
			qo.at.SetCoalesced()
			if f.err != nil {
				return Result{}, f.err
			}
			qo.at.SetSolve(f.stats.Iterations, f.stats.Residual)
			return Result{Scores: f.res, Stats: f.stats, Coalesced: true, Generation: f.gen}, nil
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	}
	// Leader: overwrite any stale (older-generation) flight; its leader
	// only removes entries that are identically its own.
	f := &flight{done: make(chan struct{}), gen: gen}
	e.flights[seed] = f
	e.fmu.Unlock()

	// The flight MUST be released no matter how the solve ends — error,
	// engine panic surfacing through do, even a panic in the cache fill —
	// or every coalesced waiter hangs until its context expires (forever
	// with no deadline). The map entry is removed before the channel
	// closes so late arrivals miss straight into the (already populated)
	// cache instead of a dead flight.
	defer func() {
		e.fmu.Lock()
		if e.flights[seed] == f {
			delete(e.flights, seed)
		}
		e.fmu.Unlock()
		close(f.done)
	}()

	q := make([]float64, eng.N())
	q[seed] = 1
	f.res, f.stats, f.err = e.do(ctx, q, eng, qo)
	if f.err != nil {
		return Result{}, f.err
	}
	if e.cache != nil {
		e.cache.put(seed, f.res, gen)
	}
	return Result{Scores: f.res, Stats: f.stats, Generation: gen}, nil
}

// Query answers a single-seed RWR query: cache hit, coalesce onto an
// identical in-flight solve, or run through the batched pool.
func (e *Executor) Query(ctx context.Context, seed int) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	eng, gen := e.engine()
	if seed < 0 || seed >= eng.N() {
		return Result{}, fmt.Errorf("qexec: seed %d out of range [0,%d)", seed, eng.N())
	}
	qo := e.startQuery(ctx, "query", seed)
	res, err := e.run(ctx, seed, eng, gen, &qo)
	e.finish(&qo, "query", seed, &res, err)
	return res, err
}

// Personalized answers an arbitrary-distribution PPR query through the
// batched pool. q must have length N; it is not cached (the key space is
// unbounded) but still benefits from pooled workspaces and batching.
func (e *Executor) Personalized(ctx context.Context, q []float64) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	eng, gen := e.engine()
	if len(q) != eng.N() {
		return Result{}, fmt.Errorf("qexec: query vector length %d want %d", len(q), eng.N())
	}
	qo := e.startQuery(ctx, "personalized", -1)
	e.m.misses.Add(1)
	scores, stats, err := e.do(ctx, q, eng, &qo)
	var res Result
	if err == nil {
		res = Result{Scores: scores, Stats: stats, Generation: gen}
	}
	e.finish(&qo, "personalized", -1, &res, err)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// TopK returns the k highest-scoring nodes for a seed (seed excluded).
// By default it runs the bound-pruned search: the Schur solve halts as
// soon as the engine's accuracy certificate proves the top-k SET is
// settled (see core.Engine.TopKBounded), which is provably the same set a
// full solve would rank — only the returned Scores may be early-stopped
// approximations (Result.EarlyStopped). A cached or in-flight full vector
// for the seed short-circuits the solve entirely: any k ranks out of a
// full vector for free. Config.FullSolveTopK, k <= 0, and k covering the
// whole graph all fall back to TopKFull.
func (e *Executor) TopK(ctx context.Context, seed, k int) ([]core.Ranked, Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	eng, gen := e.engine()
	if seed < 0 || seed >= eng.N() {
		return nil, Result{}, fmt.Errorf("qexec: seed %d out of range [0,%d)", seed, eng.N())
	}
	if e.cfg.FullSolveTopK || k <= 0 || k >= eng.N() {
		return e.TopKFull(ctx, seed, k)
	}
	qo := e.startQuery(ctx, "topk", seed)
	top, res, err := e.runTopK(ctx, seed, k, eng, gen, &qo)
	e.finish(&qo, "topk", seed, &res, err)
	return top, res, err
}

// TopKFull ranks the seed's full-tolerance score vector — the pre-bounded
// TopK behavior, served through the cache and pool like Query. It is the
// path for callers that need exact scores alongside the exact set (the
// cluster tier's weighted merges, debugging, A-B baselines). The ranking
// runs inside the query's observation window, so traces gain a "rank"
// span and the latency histogram covers it.
func (e *Executor) TopKFull(ctx context.Context, seed, k int) ([]core.Ranked, Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	eng, gen := e.engine()
	if seed < 0 || seed >= eng.N() {
		return nil, Result{}, fmt.Errorf("qexec: seed %d out of range [0,%d)", seed, eng.N())
	}
	qo := e.startQuery(ctx, "query", seed)
	res, err := e.run(ctx, seed, eng, gen, &qo)
	if err != nil {
		e.finish(&qo, "query", seed, &res, err)
		return nil, Result{}, err
	}
	tr := e.obs.Now()
	top := core.RankTopK(res.Scores, k, seed)
	e.span(qo.at, "rank", tr)
	e.finish(&qo, "query", seed, &res, nil)
	return top, res, nil
}

// runTopK is the execution core of a bounded top-k query: rank a cached
// or in-flight full vector if one exists (any k is served by a full
// vector without a solve), coalesce onto an identical (seed, k) bounded
// solve, or lead one through the k-class batched pool.
func (e *Executor) runTopK(ctx context.Context, seed, k int, eng *core.Engine, gen uint64, qo *queryObs) ([]core.Ranked, Result, error) {
	if e.cache != nil {
		scores, ok := e.cache.get(seed, gen)
		e.span(qo.at, "cache", qo.start)
		if ok {
			e.m.hits.Add(1)
			qo.at.SetCached()
			tr := e.obs.Now()
			top := core.RankTopK(scores, k, seed)
			e.span(qo.at, "rank", tr)
			return top, Result{Scores: scores, Cached: true, Generation: gen}, nil
		}
	}
	e.m.misses.Add(1)

	key := tkKey{seed: seed, k: k, gen: gen}
	e.fmu.Lock()
	// A full-vector solve already in flight for this seed will deliver
	// full-tolerance scores; ranking those answers any k, so join it
	// rather than starting a redundant bounded solve.
	if f, ok := e.flights[seed]; ok && f.gen == gen {
		e.fmu.Unlock()
		e.m.coalesced.Add(1)
		tw := e.obs.Now()
		select {
		case <-f.done:
			e.span(qo.at, "coalesce", tw)
			qo.at.SetCoalesced()
			if f.err != nil {
				return nil, Result{}, f.err
			}
			qo.at.SetSolve(f.stats.Iterations, f.stats.Residual)
			tr := e.obs.Now()
			top := core.RankTopK(f.res, k, seed)
			e.span(qo.at, "rank", tr)
			return top, Result{Scores: f.res, Stats: f.stats, Coalesced: true, Generation: f.gen}, nil
		case <-ctx.Done():
			return nil, Result{}, ctx.Err()
		}
	}
	if f, ok := e.tkFlights[key]; ok {
		e.fmu.Unlock()
		e.m.coalesced.Add(1)
		tw := e.obs.Now()
		select {
		case <-f.done:
			e.span(qo.at, "coalesce", tw)
			qo.at.SetCoalesced()
			if f.err != nil {
				return nil, Result{}, f.err
			}
			res := f.res
			res.Coalesced = true
			qo.at.SetSolve(res.Stats.Iterations, res.Stats.Residual)
			return f.top, res, nil
		case <-ctx.Done():
			return nil, Result{}, ctx.Err()
		}
	}
	f := &tkFlight{done: make(chan struct{})}
	e.tkFlights[key] = f
	e.fmu.Unlock()

	// Same release discipline as run(): the flight must open no matter how
	// the solve ends, and the map entry goes before the channel closes.
	defer func() {
		e.fmu.Lock()
		if e.tkFlights[key] == f {
			delete(e.tkFlights, key)
		}
		e.fmu.Unlock()
		close(f.done)
	}()

	if e.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.Timeout)
		defer cancel()
	}
	q := make([]float64, eng.N())
	q[seed] = 1
	r := &request{ctx: ctx, q: q, eng: eng, done: make(chan struct{}),
		at: qo.at, enq: e.obs.Now(), k: k, exclude: seed}
	if err := e.await(ctx, r, qo); err != nil {
		f.err = err
		return nil, Result{}, err
	}
	if r.err != nil {
		f.err = r.err
		return nil, Result{}, r.err
	}
	res := Result{Scores: r.res, Stats: r.stats, Generation: gen,
		EarlyStopped: r.early, SavedIters: r.saved}
	// Early-stopped vectors are exact only as a top-k SET, not as scores:
	// they never enter the cache, which holds full-tolerance vectors only.
	if e.cache != nil && !r.early {
		e.cache.put(seed, r.res, gen)
	}
	f.top, f.res = r.top, res
	return r.top, res, nil
}
