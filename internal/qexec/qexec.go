// Package qexec is the query-execution subsystem between the HTTP layer
// and the BePI engine — the layer that turns "preprocess once, answer many
// queries fast" into served throughput. It combines:
//
//   - a worker pool (sized to GOMAXPROCS by default) where each worker owns
//     a reusable core.Workspace, so steady-state queries allocate nothing
//     but their result vectors;
//   - a batch scheduler that coalesces concurrently-arriving queries into
//     multi-RHS block-elimination solves (core.Engine.QueryVectorBatch),
//     amortizing the H11 back-substitutions and the H12/H21/H31/H32 SpMVs
//     across the batch;
//   - an LRU score cache with singleflight deduplication, so a hot seed
//     costs one solve no matter how many requests race for it;
//   - admission control: a bounded queue that sheds load with
//     ErrOverloaded when full, and per-query deadlines threaded down into
//     the iterative Schur solver via context.Context.
//
// Counters for all of the above are exposed through Metrics for the
// server's /metrics endpoint.
package qexec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"bepi/internal/core"
)

// Errors reported by admission control.
var (
	// ErrOverloaded means the bounded queue was full; the caller should
	// shed the request (HTTP 429).
	ErrOverloaded = errors.New("qexec: queue full, request shed")
	// ErrClosed means the executor has been shut down.
	ErrClosed = errors.New("qexec: executor closed")
)

// Config sizes the executor. Zero values select defaults; CacheEntries < 0
// disables the cache.
type Config struct {
	// Workers is the pool size; default runtime.GOMAXPROCS(0).
	Workers int
	// MaxBatch caps how many queries one worker coalesces into a single
	// multi-RHS solve; default 8.
	MaxBatch int
	// BatchWindow is how long a worker holding a non-full batch waits for
	// more queries to arrive before solving; default 200µs. Zero after
	// defaulting is allowed via -1: solve immediately, batching only what
	// is already queued.
	BatchWindow time.Duration
	// QueueDepth bounds the admission queue; requests beyond it are shed
	// with ErrOverloaded. Default 4×Workers×MaxBatch.
	QueueDepth int
	// CacheEntries bounds the LRU score cache; default 1024, negative
	// disables caching.
	CacheEntries int
	// Timeout, if positive, is the per-query deadline applied on
	// submission and enforced inside the iterative solver.
	Timeout time.Duration
	// Parallelism, when non-zero, re-points the engine's compute pool
	// (core.Engine.SetParallelism) before the workers start: the sparse
	// kernels under each solve then use up to that many cores. Zero keeps
	// the engine's current pool (the shared GOMAXPROCS pool for freshly
	// loaded indexes). With Workers already sized to GOMAXPROCS the pool
	// is usually saturated by concurrent queries alone; raising kernel
	// parallelism mainly helps low-concurrency/large-graph serving — see
	// DESIGN.md for guidance on capping it.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 200 * time.Microsecond
	} else if c.BatchWindow < 0 {
		c.BatchWindow = 0
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers * c.MaxBatch
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	return c
}

// request is one query in flight through the pool.
type request struct {
	ctx   context.Context
	q     []float64
	done  chan struct{}
	res   []float64
	stats core.QueryStats
	err   error
}

// Result is a completed query: the score vector (shared and read-only when
// it came from the cache), engine stats, and how the subsystem served it.
type Result struct {
	// Scores is indexed by original node id. When Cached is true it is
	// shared with other callers and MUST NOT be mutated.
	Scores []float64
	Stats  core.QueryStats
	// Cached means the result came from the LRU cache without any solve.
	Cached bool
	// Coalesced means this request piggybacked on an identical in-flight
	// query (singleflight) instead of solving on its own.
	Coalesced bool
}

// Executor is the query-execution subsystem over one preprocessed engine.
// It is safe for concurrent use.
type Executor struct {
	eng *core.Engine
	cfg Config

	reqs chan *request
	mu   sync.RWMutex // guards closed vs. sends on reqs
	done bool
	wg   sync.WaitGroup

	cache *lruCache // nil when disabled

	fmu     sync.Mutex
	flights map[int]*flight // singleflight per seed

	m counters
}

// flight is one in-progress single-seed solve that duplicate requests wait
// on.
type flight struct {
	done  chan struct{}
	res   []float64
	stats core.QueryStats
	err   error
}

// New starts the executor's worker pool over a preprocessed engine.
// Call Close to stop it.
func New(eng *core.Engine, cfg Config) *Executor {
	cfg = cfg.withDefaults()
	if cfg.Parallelism != 0 {
		eng.SetParallelism(cfg.Parallelism)
	}
	e := &Executor{
		eng:     eng,
		cfg:     cfg,
		reqs:    make(chan *request, cfg.QueueDepth),
		flights: make(map[int]*flight),
	}
	if cfg.CacheEntries > 0 {
		e.cache = newLRUCache(cfg.CacheEntries)
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Config returns the executor's effective (defaulted) configuration.
func (e *Executor) Config() Config { return e.cfg }

// Close stops accepting work, lets queued requests drain, and waits for the
// workers to exit. It is idempotent.
func (e *Executor) Close() {
	e.mu.Lock()
	if e.done {
		e.mu.Unlock()
		return
	}
	e.done = true
	close(e.reqs)
	e.mu.Unlock()
	e.wg.Wait()
}

// worker owns one reusable workspace and runs coalesced batches until the
// queue closes.
func (e *Executor) worker() {
	defer e.wg.Done()
	ws := e.eng.NewWorkspace()
	batch := make([]*request, 0, e.cfg.MaxBatch)
	ctxs := make([]context.Context, 0, e.cfg.MaxBatch)
	qs := make([][]float64, 0, e.cfg.MaxBatch)
	for r := range e.reqs {
		batch = append(batch[:0], r)
		// Take whatever is already queued, then hold the batch open for
		// the batch window to let concurrent arrivals coalesce.
	drain:
		for len(batch) < e.cfg.MaxBatch {
			select {
			case r2, ok := <-e.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, r2)
			default:
				break drain
			}
		}
		if len(batch) < e.cfg.MaxBatch && e.cfg.BatchWindow > 0 {
			timer := time.NewTimer(e.cfg.BatchWindow)
		window:
			for len(batch) < e.cfg.MaxBatch {
				select {
				case r2, ok := <-e.reqs:
					if !ok {
						break window
					}
					batch = append(batch, r2)
				case <-timer.C:
					break window
				}
			}
			timer.Stop()
		}

		e.m.observeBatch(len(batch))
		ctxs = ctxs[:0]
		qs = qs[:0]
		for _, br := range batch {
			ctxs = append(ctxs, br.ctx)
			qs = append(qs, br.q)
		}
		res, stats, errs := e.eng.QueryVectorBatch(ctxs, qs, ws)
		for i, br := range batch {
			br.res, br.stats, br.err = res[i], stats[i], errs[i]
			close(br.done)
		}
	}
}

// submit enqueues a query, shedding with ErrOverloaded when the queue is
// full and ErrClosed after shutdown.
func (e *Executor) submit(ctx context.Context, q []float64) (*request, error) {
	r := &request{ctx: ctx, q: q, done: make(chan struct{})}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.done {
		return nil, ErrClosed
	}
	select {
	case e.reqs <- r:
		return r, nil
	default:
		e.m.shed.Add(1)
		return nil, ErrOverloaded
	}
}

// do runs one query through admission control and the pool, honoring the
// per-query deadline both while waiting and inside the solver.
func (e *Executor) do(ctx context.Context, q []float64) ([]float64, core.QueryStats, error) {
	if e.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.Timeout)
		defer cancel()
	}
	r, err := e.submit(ctx, q)
	if err != nil {
		return nil, core.QueryStats{}, err
	}
	select {
	case <-r.done:
		return r.res, r.stats, r.err
	case <-ctx.Done():
		// The worker sees the same context and aborts the solve; the
		// requester does not wait for it.
		return nil, core.QueryStats{}, ctx.Err()
	}
}

// Query answers a single-seed RWR query: cache hit, coalesce onto an
// identical in-flight solve, or run through the batched pool.
func (e *Executor) Query(ctx context.Context, seed int) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if seed < 0 || seed >= e.eng.N() {
		return Result{}, fmt.Errorf("qexec: seed %d out of range [0,%d)", seed, e.eng.N())
	}
	if e.cache != nil {
		if scores, ok := e.cache.get(seed); ok {
			e.m.hits.Add(1)
			return Result{Scores: scores, Cached: true}, nil
		}
	}
	e.m.misses.Add(1)

	e.fmu.Lock()
	if f, ok := e.flights[seed]; ok {
		e.fmu.Unlock()
		e.m.coalesced.Add(1)
		select {
		case <-f.done:
			if f.err != nil {
				return Result{}, f.err
			}
			return Result{Scores: f.res, Stats: f.stats, Coalesced: true}, nil
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	e.flights[seed] = f
	e.fmu.Unlock()

	q := make([]float64, e.eng.N())
	q[seed] = 1
	f.res, f.stats, f.err = e.do(ctx, q)
	if f.err == nil && e.cache != nil {
		e.cache.put(seed, f.res)
	}
	// Remove the flight before signaling so late arrivals miss straight
	// into the (already populated) cache instead of a dead flight.
	e.fmu.Lock()
	delete(e.flights, seed)
	e.fmu.Unlock()
	close(f.done)
	if f.err != nil {
		return Result{}, f.err
	}
	return Result{Scores: f.res, Stats: f.stats}, nil
}

// Personalized answers an arbitrary-distribution PPR query through the
// batched pool. q must have length N; it is not cached (the key space is
// unbounded) but still benefits from pooled workspaces and batching.
func (e *Executor) Personalized(ctx context.Context, q []float64) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(q) != e.eng.N() {
		return Result{}, fmt.Errorf("qexec: query vector length %d want %d", len(q), e.eng.N())
	}
	e.m.misses.Add(1)
	scores, stats, err := e.do(ctx, q)
	if err != nil {
		return Result{}, err
	}
	return Result{Scores: scores, Stats: stats}, nil
}

// TopK returns the k highest-scoring nodes for a seed (seed excluded),
// served through the cache and pool like Query.
func (e *Executor) TopK(ctx context.Context, seed, k int) ([]core.Ranked, Result, error) {
	res, err := e.Query(ctx, seed)
	if err != nil {
		return nil, Result{}, err
	}
	return core.RankTopK(res.Scores, k, seed), res, nil
}
