package qexec

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"bepi/internal/core"
	"bepi/internal/gen"
)

// freshEngine preprocesses a private engine (distinct from the shared one in
// eng) so tests can attach hooks or swap without disturbing other tests.
func freshEngine(t testing.TB, scale, ef int, seed int64) *core.Engine {
	t.Helper()
	g := gen.RMAT(gen.DefaultRMAT(scale, ef, seed))
	e, err := core.Preprocess(g, core.Options{})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	return e
}

// TestSwapEngineInvalidatesCache is the acceptance check that no stale
// cached score survives an engine swap: a seed cached against generation 1
// must be re-solved on the new engine after SwapEngine, and the scores must
// match the new engine, not the old one.
func TestSwapEngineInvalidatesCache(t *testing.T) {
	e1 := freshEngine(t, 8, 6, 5)
	e2 := freshEngine(t, 8, 6, 99) // same N, different edges → different scores
	if e1.N() != e2.N() {
		t.Fatalf("test setup: engines differ in size: %d vs %d", e1.N(), e2.N())
	}
	ex := New(e1, Config{})
	defer ex.Close()

	const seed = 17
	first, err := ex.Query(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if g := ex.Generation(); g != 1 {
		t.Fatalf("initial generation = %d, want 1", g)
	}

	ex.SwapEngine(e2)
	if g := ex.Generation(); g != 2 {
		t.Fatalf("generation after swap = %d, want 2", g)
	}
	if m := ex.Metrics(); m.CacheEntries != 0 {
		t.Fatalf("cache holds %d entries after swap, want 0", m.CacheEntries)
	}

	second, err := ex.Query(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Fatal("query after swap served a stale cache hit")
	}
	want, _, err := e2.Query(seed)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(second.Scores, want); d > 1e-12 {
		t.Fatalf("post-swap scores diverge from new engine by %g", d)
	}
	if d := maxAbsDiff(first.Scores, second.Scores); d == 0 {
		t.Fatal("post-swap scores identical to old engine's — swap had no effect")
	}
	// And the post-swap result is cached under the new generation.
	third, err := ex.Query(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Fatal("repeat query after swap should hit the new-generation cache")
	}
}

// TestSwapEngineSamePointerNoop checks swapping in the engine already being
// served neither bumps the generation nor purges the cache.
func TestSwapEngineSamePointerNoop(t *testing.T) {
	e1 := freshEngine(t, 7, 5, 3)
	ex := New(e1, Config{})
	defer ex.Close()
	if _, err := ex.Query(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	ex.SwapEngine(e1)
	if g := ex.Generation(); g != 1 {
		t.Fatalf("same-pointer swap bumped generation to %d", g)
	}
	res, err := ex.Query(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("same-pointer swap purged the cache")
	}
}

// TestSwapDoesNotCoalesceAcrossGenerations stalls a solve on the old
// engine, swaps mid-flight, and checks a new query for the same seed does
// NOT piggyback on the old-generation flight: it must be solved on the new
// engine and return the new engine's scores.
func TestSwapDoesNotCoalesceAcrossGenerations(t *testing.T) {
	e1 := freshEngine(t, 8, 6, 5)
	e2 := freshEngine(t, 8, 6, 99)

	ex := New(e1, Config{CacheEntries: -1, Workers: 2})
	defer ex.Close()

	// Stall every solve on e1 until released. Installed after New because
	// the executor attaches its own telemetry hook at construction.
	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseStall := func() { releaseOnce.Do(func() { close(release) }) }
	defer releaseStall() // unblock the stalled worker even if the test fatals
	var stallOnce sync.Once
	started := make(chan struct{})
	e1.SetIterHook(func(int, float64) {
		stallOnce.Do(func() { close(started) })
		<-release
	})
	defer e1.SetIterHook(nil)

	const seed = 11
	type out struct {
		res Result
		err error
	}
	oldDone := make(chan out, 1)
	go func() {
		r, err := ex.Query(context.Background(), seed)
		oldDone <- out{r, err}
	}()
	<-started // the old-generation solve is in flight and stalled

	ex.SwapEngine(e2)

	// Same seed on the new generation: must not join the stalled flight.
	newDone := make(chan out, 1)
	go func() {
		r, err := ex.Query(context.Background(), seed)
		newDone <- out{r, err}
	}()

	var got out
	select {
	case got = <-newDone:
	case <-time.After(30 * time.Second):
		t.Fatal("post-swap query blocked behind the old-generation flight")
	}
	if got.err != nil {
		t.Fatal(got.err)
	}
	if got.res.Coalesced {
		t.Fatal("post-swap query coalesced onto an old-generation flight")
	}
	want, _, err := e2.Query(seed)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got.res.Scores, want); d > 1e-12 {
		t.Fatalf("post-swap query diverges from new engine by %g", d)
	}

	releaseStall() // let the old solve finish; it must not poison anything
	old := <-oldDone
	if old.err != nil {
		t.Fatalf("old-generation query failed: %v", old.err)
	}
	// A fresh query still works and still reflects the new engine.
	again, err := ex.Query(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(again.Scores, want); d > 1e-12 {
		t.Fatalf("late old-generation completion corrupted serving state: diverges by %g", d)
	}
}

// TestSolvePanicFailsFlight injects a panic into the engine's iteration
// hook and checks the worker's panic barrier: the leader and every
// coalesced waiter get ErrSolvePanicked instead of hanging on a flight
// whose done channel never closes, and the executor keeps serving.
func TestSolvePanicFailsFlight(t *testing.T) {
	e := freshEngine(t, 8, 6, 7)
	// The fault injects through the per-iteration solver hook, so the test
	// needs a seed whose Schur solve actually iterates — spoke/dead-end
	// seeds can finish in zero iterations and never reach the hook.
	seed := -1
	for s := 0; s < e.N(); s++ {
		if _, st, err := e.Query(s); err == nil && st.Iterations > 0 {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Skip("no seed on this graph exercises the iterative solver")
	}
	ex := New(e, Config{Workers: 1, MaxBatch: 8, BatchWindow: 20 * time.Millisecond})
	defer ex.Close()

	// Installed after New: the executor attaches its own hook at
	// construction and would overwrite one set earlier.
	var panicking sync.Map
	e.SetIterHook(func(int, float64) {
		if _, ok := panicking.Load("arm"); ok {
			panic("injected solver fault")
		}
	})
	defer e.SetIterHook(nil)

	panicking.Store("arm", true)
	const N = 6
	var wg sync.WaitGroup
	errs := make([]error, N)
	wg.Add(N)
	for i := 0; i < N; i++ {
		go func(i int) {
			defer wg.Done()
			_, errs[i] = ex.Query(context.Background(), seed) // same seed → coalesce
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("queries hung after a solve panic — flight.done never closed")
	}
	for i, err := range errs {
		if !errors.Is(err, ErrSolvePanicked) {
			t.Fatalf("query %d: got %v, want ErrSolvePanicked", i, err)
		}
	}
	if m := ex.Metrics(); m.SolvePanics == 0 {
		t.Fatal("panic barrier fired but SolvePanics counter is zero")
	}

	// The worker survived and the discarded workspace was rebuilt: the
	// executor still answers once the fault clears.
	panicking.Delete("arm")
	res, err := ex.Query(context.Background(), seed)
	if err != nil {
		t.Fatalf("executor dead after panic recovery: %v", err)
	}
	want, _, err := e.Query(seed)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Scores, want); d > 1e-12 {
		t.Fatalf("post-panic solve diverges by %g", d)
	}
}

// TestCachedScoresSharedByDefault documents the zero-copy contract: without
// CopyCachedScores, a cache hit returns the executor's own slice, so a
// caller mutation would be visible to the next hit. The test detects
// mutation leaking through the cache.
func TestCachedScoresSharedByDefault(t *testing.T) {
	e := eng(t)
	ex := New(e, Config{})
	defer ex.Close()
	if _, err := ex.Query(context.Background(), 31); err != nil {
		t.Fatal(err)
	}
	hit1, err := ex.Query(context.Background(), 31)
	if err != nil {
		t.Fatal(err)
	}
	if !hit1.Cached {
		t.Fatal("expected a cache hit")
	}
	hit1.Scores[0] = 12345 // caller violates the read-only contract
	hit2, err := ex.Query(context.Background(), 31)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2.Cached {
		t.Fatal("expected a cache hit")
	}
	if hit2.Scores[0] != 12345 {
		t.Fatal("default mode should share the cached slice (zero-copy); mutation did not propagate — did the default change? update Result.Scores docs")
	}
}

// TestCopyCachedScoresIsolates checks the CopyCachedScores knob: every
// cache hit gets a private copy, so caller mutations cannot corrupt the
// cache or other callers.
func TestCopyCachedScoresIsolates(t *testing.T) {
	e := eng(t)
	ex := New(e, Config{CopyCachedScores: true})
	defer ex.Close()
	miss, err := ex.Query(context.Background(), 37)
	if err != nil {
		t.Fatal(err)
	}
	hit1, err := ex.Query(context.Background(), 37)
	if err != nil {
		t.Fatal(err)
	}
	if !hit1.Cached {
		t.Fatal("expected a cache hit")
	}
	orig := hit1.Scores[0]
	hit1.Scores[0] = 9999
	hit2, err := ex.Query(context.Background(), 37)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2.Cached {
		t.Fatal("expected a cache hit")
	}
	if hit2.Scores[0] != orig {
		t.Fatalf("mutation leaked through the cache with CopyCachedScores: got %g, want %g", hit2.Scores[0], orig)
	}
	if d := maxAbsDiff(hit2.Scores, miss.Scores); d != 0 {
		t.Fatalf("copied hit diverges from the solved scores by %g", d)
	}
}
