package sparse

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		m := randCSR(rng, 1+rng.Intn(50), 1+rng.Intn(50), 0.2)
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		back, err := ReadCSR(&buf)
		if err != nil {
			t.Fatalf("ReadCSR: %v", err)
		}
		if !m.Equal(back) {
			t.Fatalf("trial %d: round trip not bit-exact", trial)
		}
	}
}

func TestSerializationEmptyMatrix(t *testing.T) {
	m := Zero(5, 7)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	back, err := ReadCSR(&buf)
	if err != nil {
		t.Fatalf("ReadCSR: %v", err)
	}
	if back.Rows() != 5 || back.Cols() != 7 || back.NNZ() != 0 {
		t.Fatalf("got %v", back)
	}
}

func TestReadCSRRejectsGarbage(t *testing.T) {
	if _, err := ReadCSR(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := ReadCSR(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestReadCSRRejectsTruncated(t *testing.T) {
	m := Identity(10)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadCSR(bytes.NewReader(raw[:len(raw)-9])); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}
