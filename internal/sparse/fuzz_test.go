package sparse

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// FuzzReadCSR checks that arbitrary bytes never panic the deserializer and
// that anything it accepts re-serializes to a parseable matrix.
func FuzzReadCSR(f *testing.F) {
	// Seed with a valid serialized matrix and a few mutations.
	rng := rand.New(rand.NewSource(1))
	m := randCSR(rng, 8, 6, 0.4)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0x49, 0x50, 0x65, 0x42}) // magic only
	mutated := append([]byte(nil), valid...)
	mutated[10] ^= 0xFF
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCSR(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must be internally consistent and round-trip.
		if got.Rows() < 0 || got.Cols() < 0 {
			t.Fatal("negative dims accepted")
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		back, err := ReadCSR(&out)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if back.Rows() != got.Rows() || back.NNZ() != got.NNZ() {
			t.Fatal("round trip changed shape")
		}
	})
}

// FuzzValidateNewCSR drives Validate and NewCSR with arbitrary structure
// bytes: rowPtr and col arrays are decoded from the fuzz payloads, and the
// two functions must agree — whenever Validate accepts, NewCSR must build a
// matrix whose kernels run in-bounds (MulVec plus a compact round trip);
// whenever Validate rejects, NewCSR must panic rather than construct.
func FuzzValidateNewCSR(f *testing.F) {
	pack := func(xs ...int16) []byte {
		b := make([]byte, 2*len(xs))
		for i, x := range xs {
			binary.LittleEndian.PutUint16(b[2*i:], uint16(x))
		}
		return b
	}
	// Valid 2x3 with 2 entries; then mutations: decreasing rowPtr, bad
	// column, wrong tail, empty.
	f.Add(uint8(2), uint8(3), pack(0, 1, 2), pack(2, 0))
	f.Add(uint8(2), uint8(3), pack(0, 2, 1), pack(0, 1))
	f.Add(uint8(2), uint8(3), pack(0, 1, 2), pack(2, 9))
	f.Add(uint8(2), uint8(3), pack(0, 1, 5), pack(2, 0))
	f.Add(uint8(0), uint8(0), pack(0), pack())

	f.Fuzz(func(t *testing.T, rows8, cols8 uint8, rowPtrB, colB []byte) {
		rows, cols := int(rows8)%32, int(cols8)%32
		rowPtr := make([]int, len(rowPtrB)/2)
		for i := range rowPtr {
			rowPtr[i] = int(int16(binary.LittleEndian.Uint16(rowPtrB[2*i:])))
		}
		col := make([]int, len(colB)/2)
		for i := range col {
			col[i] = int(int16(binary.LittleEndian.Uint16(colB[2*i:])))
		}
		val := make([]float64, len(col))
		for i := range val {
			val[i] = float64(i) + 0.5
		}

		err := Validate(rows, cols, rowPtr, col)
		var m *CSR
		panicked := func() (p bool) {
			defer func() { p = recover() != nil }()
			m = NewCSR(rows, cols, rowPtr, col, val)
			return
		}()
		if err == nil && panicked {
			t.Fatalf("Validate accepted but NewCSR panicked (rows=%d cols=%d rowPtr=%v col=%v)", rows, cols, rowPtr, col)
		}
		if err != nil && !panicked {
			t.Fatalf("Validate rejected (%v) but NewCSR accepted", err)
		}
		if err != nil {
			return
		}
		// Accepted input: kernels must stay in-bounds and the compact form
		// must round-trip. (NewCSR may have merged duplicates, so validate
		// the built matrix, not the raw input.)
		if verr := Validate(m.Rows(), m.Cols(), m.RowPtr(), m.ColIdx()); verr != nil {
			t.Fatalf("NewCSR built an invalid matrix: %v", verr)
		}
		x := make([]float64, m.Cols())
		for i := range x {
			x[i] = 1
		}
		dst := make([]float64, m.Rows())
		m.MulVec(dst, x)
		c := Compact(m)
		if !c.ToCSR().Equal(m) {
			t.Fatal("compact round trip changed the matrix")
		}
		dst32 := make([]float64, m.Rows())
		c.MulVec(dst32, x)
		for i := range dst {
			if dst[i] != dst32[i] {
				t.Fatalf("compact MulVec differs at %d", i)
			}
		}
	})
}
