package sparse

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzReadCSR checks that arbitrary bytes never panic the deserializer and
// that anything it accepts re-serializes to a parseable matrix.
func FuzzReadCSR(f *testing.F) {
	// Seed with a valid serialized matrix and a few mutations.
	rng := rand.New(rand.NewSource(1))
	m := randCSR(rng, 8, 6, 0.4)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0x49, 0x50, 0x65, 0x42}) // magic only
	mutated := append([]byte(nil), valid...)
	mutated[10] ^= 0xFF
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCSR(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must be internally consistent and round-trip.
		if got.Rows() < 0 || got.Cols() < 0 {
			t.Fatal("negative dims accepted")
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		back, err := ReadCSR(&out)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if back.Rows() != got.Rows() || back.NNZ() != got.NNZ() {
			t.Fatal("round trip changed shape")
		}
	})
}
