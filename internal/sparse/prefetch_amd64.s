#include "textflag.h"

// func prefetchT0(p unsafe.Pointer)
TEXT ·prefetchT0(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	PREFETCHT0 (AX)
	RET
