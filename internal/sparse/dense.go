package sparse

import "fmt"

// ToDense converts the matrix into a row-major dense [][]float64. Intended
// for tests and small exact solves only.
func (m *CSR) ToDense() [][]float64 {
	d := make([][]float64, m.rows)
	flat := make([]float64, m.rows*m.cols)
	for i := 0; i < m.rows; i++ {
		d[i] = flat[i*m.cols : (i+1)*m.cols]
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			d[i][m.col[p]] = m.val[p]
		}
	}
	return d
}

// FromDense builds a CSR matrix from a dense row-major matrix, storing only
// nonzero entries.
func FromDense(d [][]float64) *CSR {
	rows := len(d)
	cols := 0
	if rows > 0 {
		cols = len(d[0])
	}
	coo := NewCOO(rows, cols)
	for i, row := range d {
		if len(row) != cols {
			panic(fmt.Sprintf("sparse: ragged dense row %d: %d vs %d", i, len(row), cols))
		}
		for j, v := range row {
			if v != 0 {
				coo.Add(i, j, v)
			}
		}
	}
	return coo.ToCSR()
}
