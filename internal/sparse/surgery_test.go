package sparse

import (
	"math/rand"
	"testing"
)

// randomCSRForEdits builds a random sparse matrix via COO (duplicates merged).
func randomCSRForEdits(rng *rand.Rand, rows, cols, nnz int) *CSR {
	a := NewCOO(rows, cols)
	for k := 0; k < nnz; k++ {
		a.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
	}
	return a.ToCSR()
}

// TestWithEditsDeltaMatchesDense applies random edit batches (inserts,
// overwrites, deletes, and explicit-zero stores) and checks the result
// against a dense reference, plus that the receiver is untouched.
func TestWithEditsDeltaMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m := randomCSRForEdits(rng, rows, cols, rng.Intn(3*rows))
		before := m.Clone()

		ref := make(map[[2]int]float64)
		for i := 0; i < rows; i++ {
			for p, e := m.RowRange(i); p < e; p++ {
				ref[[2]int{i, m.ColIdx()[p]}] = m.Values()[p]
			}
		}
		var edits []Edit
		for k := 0; k < rng.Intn(20); k++ {
			e := Edit{Row: rng.Intn(rows), Col: rng.Intn(cols)}
			switch rng.Intn(3) {
			case 0:
				e.Delete = true
			case 1:
				e.Val = rng.NormFloat64()
			case 2:
				e.Val = 0 // explicit zero must be stored, not dropped
			}
			edits = append(edits, e)
			if e.Delete {
				delete(ref, [2]int{e.Row, e.Col})
			} else {
				ref[[2]int{e.Row, e.Col}] = e.Val
			}
		}

		got := m.WithEdits(edits)
		if !m.Equal(before) {
			t.Fatalf("trial %d: receiver mutated by WithEdits", trial)
		}
		if got.NNZ() != len(ref) {
			t.Fatalf("trial %d: nnz=%d want %d (explicit zeros must be kept)", trial, got.NNZ(), len(ref))
		}
		for pos, want := range ref {
			if v := got.At(pos[0], pos[1]); v != want {
				t.Fatalf("trial %d: at (%d,%d) got %v want %v", trial, pos[0], pos[1], v, want)
			}
		}
		// Pattern invariant: strictly increasing columns per row.
		for i := 0; i < got.Rows(); i++ {
			for p, e := got.RowRange(i); p+1 < e; p++ {
				if got.ColIdx()[p] >= got.ColIdx()[p+1] {
					t.Fatalf("trial %d: row %d columns not strictly increasing", trial, i)
				}
			}
		}
	}
}

// TestWithEditsDeltaLastWins pins the documented conflict rule: when several
// edits target one position, the last in the slice wins.
func TestWithEditsDeltaLastWins(t *testing.T) {
	m := Identity(3)
	got := m.WithEdits([]Edit{
		{Row: 1, Col: 1, Val: 7},
		{Row: 1, Col: 1, Delete: true},
		{Row: 1, Col: 1, Val: 9},
		{Row: 0, Col: 2, Val: 5},
		{Row: 0, Col: 2, Delete: true},
	})
	if v := got.At(1, 1); v != 9 {
		t.Fatalf("(1,1)=%v want 9", v)
	}
	if v := got.At(0, 2); v != 0 {
		t.Fatalf("(0,2)=%v want deleted", v)
	}
	if got.NNZ() != 3 {
		t.Fatalf("nnz=%d want 3", got.NNZ())
	}
}

// TestWithEditsDeltaNoEdits checks the empty-batch fast path returns an
// independent copy.
func TestWithEditsDeltaNoEdits(t *testing.T) {
	m := Identity(4)
	got := m.WithEdits(nil)
	if !got.Equal(m) {
		t.Fatal("empty edit batch changed the matrix")
	}
	got.Values()[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("result shares backing arrays with receiver")
	}
}

// TestWithRowsAppendedDelta checks shape, content, and backing-array
// independence of the node-growth helper.
func TestWithRowsAppendedDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomCSRForEdits(rng, 5, 4, 11)
	got := m.WithRowsAppended(3)
	if got.Rows() != 8 || got.Cols() != 4 {
		t.Fatalf("shape %dx%d want 8x4", got.Rows(), got.Cols())
	}
	if got.NNZ() != m.NNZ() {
		t.Fatalf("nnz=%d want %d", got.NNZ(), m.NNZ())
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("entry (%d,%d) changed", i, j)
			}
		}
	}
	for i := 5; i < 8; i++ {
		if s, e := got.RowRange(i); s != e {
			t.Fatalf("appended row %d not empty", i)
		}
	}
	if len(m.Values()) > 0 {
		got.Values()[0] = 1e9
		if m.Values()[0] == 1e9 {
			t.Fatal("result shares val array with receiver")
		}
	}
	if got.WithRowsAppended(0).Rows() != got.Rows() {
		t.Fatal("k=0 changed row count")
	}
}

// TestWithColsWidenedDelta checks the column-widening helper.
func TestWithColsWidenedDelta(t *testing.T) {
	m := Identity(3)
	got := m.WithColsWidened(5)
	if got.Rows() != 3 || got.Cols() != 5 || got.NNZ() != 3 {
		t.Fatalf("got %v", got)
	}
	for i := 0; i < 3; i++ {
		if got.At(i, i) != 1 {
			t.Fatalf("diagonal lost at %d", i)
		}
	}
}
