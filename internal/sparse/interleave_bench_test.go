package sparse

import (
	"fmt"
	"runtime"
	"testing"

	"bepi/internal/par"
)

// batchBenchVecs builds width RHS/output pairs against the shared SpMV
// fixture.
func batchBenchVecs(width int) (xs, ys [][]float64) {
	xs = make([][]float64, width)
	ys = make([][]float64, width)
	for k := range xs {
		xs[k] = randVec(len(mulVecBench.x), int64(100+k))
		ys[k] = make([]float64, len(mulVecBench.dst))
	}
	return xs, ys
}

// rowOuterBatchBench is the pre-interleaving MulVecBatch loop — rows outer,
// one RHS at a time through the four-lane kernel — frozen here as the
// baseline the interleaved kernel is measured against.
func rowOuterBatchBench(m *CSR, dst, x [][]float64) {
	for i := 0; i < m.rows; i++ {
		cols := m.col[m.rowPtr[i]:m.rowPtr[i+1]]
		vals := m.val[m.rowPtr[i]:m.rowPtr[i+1]]
		for k := range x {
			xk := x[k]
			var s0, s1, s2, s3 float64
			p := 0
			for ; p+4 <= len(cols); p += 4 {
				s0 += vals[p] * xk[cols[p]]
				s1 += vals[p+1] * xk[cols[p+1]]
				s2 += vals[p+2] * xk[cols[p+2]]
				s3 += vals[p+3] * xk[cols[p+3]]
			}
			for ; p < len(cols); p++ {
				s0 += vals[p] * xk[cols[p]]
			}
			dst[k][i] = (s0 + s1) + (s2 + s3)
		}
	}
}

// BenchmarkMulVecBatchInterleaved measures the RHS-interleaved batch kernel
// against the frozen row-outer baseline at batch widths 1/4/8/16, in both
// layouts, over the worker ladder. The interleaved kernel streams the index
// arrays once per batch and amortizes each loaded entry over four RHS; the
// baseline re-reads them per RHS. bytes/op counts the matrix stream once
// plus the in/out vectors per RHS, so MB/s across widths are comparable.
func BenchmarkMulVecBatchInterleaved(b *testing.B) {
	mulVecBenchSetup()
	for _, layout := range []string{"csr", "csr32"} {
		for _, width := range []int{1, 4, 8, 16} {
			for _, w := range benchWidths() {
				name := fmt.Sprintf("layout=%s/width=%d/workers=%d", layout, width, w)
				b.Run(name, func(b *testing.B) {
					prev := runtime.GOMAXPROCS(w)
					defer runtime.GOMAXPROCS(prev)
					xs, ys := batchBenchVecs(width)
					m := mulVecBench.m.Clone()
					var pool *par.Pool
					if w > 1 {
						pool = par.NewStickyPool(w, false)
						defer pool.Close()
					}
					vecBytes := int64(width) * 8 * int64(m.Rows()+m.Cols())
					run := func(matBytes int64, batch func(dst, x [][]float64)) func(b *testing.B) {
						return func(b *testing.B) {
							b.SetBytes(matBytes + vecBytes)
							b.ResetTimer()
							for i := 0; i < b.N; i++ {
								batch(ys, xs)
							}
						}
					}
					if layout == "csr" {
						if pool != nil {
							m.SetPool(pool).FirstTouch()
						}
						b.Run("rowouter", run(int64(m.NNZ()*16), func(dst, x [][]float64) {
							rowOuterBatchBench(m, dst, x)
						}))
						b.Run("interleaved", run(int64(m.NNZ()*16), m.MulVecBatch))
					} else {
						c := Compact(m)
						if pool != nil {
							c.SetPool(pool).FirstTouch()
						}
						// No row-outer CSR32 baseline survives; compare the
						// interleaved compact kernel against the wide row-outer.
						b.Run("interleaved", run(int64(c.NNZ()*12), c.MulVecBatch))
					}
				})
			}
		}
	}
}

// BenchmarkPrefetchDistance sweeps the gather prefetch knob over the shared
// cache-spilling fixture, serial so the effect is not hidden by parallel
// overlap. Distance 0 is the unhinted baseline.
func BenchmarkPrefetchDistance(b *testing.B) {
	mulVecBenchSetup()
	defer resetPrefetchForTest()
	for _, d := range []int{0, 4, 8, 16} {
		b.Run(fmt.Sprintf("dist=%d", d), func(b *testing.B) {
			SetPrefetchDistance(d)
			m := mulVecBench.m
			b.SetBytes(int64(m.NNZ() * 16))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MulVec(mulVecBench.dst, mulVecBench.x)
			}
		})
	}
}
