package sparse

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"bepi/internal/par"
)

// csr32Cases are the graph shapes the compact kernels must match the wide
// kernels on bit-for-bit: an RMAT-like skewed random matrix (randBigCSR
// sprinkles empty and heavy rows), a matrix that is one dense mega-row, a
// single-column matrix, and an all-empty one.
func csr32Cases() map[string]*CSR {
	cases := map[string]*CSR{
		"skewed": randBigCSR(2000, 1700, 20, 11),
		"empty":  Zero(50, 70),
	}
	coo := NewCOO(5, ParallelMinNNZ)
	for j := 0; j < ParallelMinNNZ; j++ {
		coo.Add(3, j, float64(j%17)-8)
	}
	cases["dense-row"] = coo.ToCSR()
	one := NewCOO(400, 1)
	for i := 0; i < 400; i += 3 {
		one.Add(i, 0, float64(i)*0.25-30)
	}
	cases["single-col"] = one.ToCSR()
	return cases
}

// TestCSR32BitIdentical checks every CSR32 float64 kernel against its CSR
// twin by representation (Float64bits), serially and at several worker
// counts, across the pathological shapes.
func TestCSR32BitIdentical(t *testing.T) {
	for name, m := range csr32Cases() {
		t.Run(name, func(t *testing.T) {
			rows, cols := m.Rows(), m.Cols()
			x := randVec(cols, 2)
			xt := randVec(rows, 3)
			for i := 0; i < len(xt); i += 5 {
				xt[i] = 0 // exercise the scatter zero-skip on both sides
			}

			wantMul := make([]float64, rows)
			m.MulVec(wantMul, x)
			wantAddInit := randVec(rows, 4)
			wantAdd := append([]float64(nil), wantAddInit...)
			m.AddMulVec(wantAdd, -0.7, x)
			wantT := make([]float64, cols)
			m.MulVecT(wantT, xt)
			const batch = 4
			xb := make([][]float64, batch)
			wantB := make([][]float64, batch)
			for k := range xb {
				xb[k] = randVec(cols, int64(10+k))
				wantB[k] = make([]float64, rows)
			}
			m.MulVecBatch(wantB, xb)

			for _, workers := range []int{1, 3, 8} {
				c := Compact(m.Clone())
				if workers > 1 {
					c.SetPool(par.NewPool(workers))
				}

				got := make([]float64, rows)
				c.MulVec(got, x)
				if i, ok := bitsEqual(got, wantMul); !ok {
					t.Fatalf("workers=%d MulVec differs at %d: %v vs %v", workers, i, got[i], wantMul[i])
				}

				gotAdd := append([]float64(nil), wantAddInit...)
				c.AddMulVec(gotAdd, -0.7, x)
				if i, ok := bitsEqual(gotAdd, wantAdd); !ok {
					t.Fatalf("workers=%d AddMulVec differs at %d", workers, i)
				}

				gotT := make([]float64, cols)
				c.MulVecT(gotT, xt)
				if i, ok := bitsEqual(gotT, wantT); !ok {
					t.Fatalf("workers=%d MulVecT (scatter) differs at %d", workers, i)
				}
				// The transpose-gather path is == equal to the scatter (zero
				// signs may differ), matching the CSR contract.
				c.CacheTranspose()
				c.MulVecT(gotT, xt)
				for j := range gotT {
					if gotT[j] != wantT[j] {
						t.Fatalf("workers=%d MulVecT (gather) [%d] = %v want %v", workers, j, gotT[j], wantT[j])
					}
				}

				gotB := make([][]float64, batch)
				for k := range gotB {
					gotB[k] = make([]float64, rows)
				}
				c.MulVecBatch(gotB, xb)
				for k := range gotB {
					if i, ok := bitsEqual(gotB[k], wantB[k]); !ok {
						t.Fatalf("workers=%d MulVecBatch rhs %d differs at %d", workers, k, i)
					}
				}
			}
		})
	}
}

// TestCSR32RoundTripAndMemory: Compact is lossless (ToCSR gives an Equal
// matrix) and cuts the index footprint in half — 8 bytes/entry of index vs
// CSR's 16, and 4-byte row pointers when nnz fits int32.
func TestCSR32RoundTripAndMemory(t *testing.T) {
	m := randBigCSR(1200, 900, 12, 7)
	c := Compact(m)
	if !c.ToCSR().Equal(m) {
		t.Fatal("Compact -> ToCSR is not the identity")
	}
	if c.Float32Values() {
		t.Fatal("Compact must keep float64 values")
	}

	// Index bytes: CSR stores 8 per col + 8 per rowPtr entry; CSR32 4+4.
	wideIdx := int64(m.NNZ())*8 + int64(len(m.rowPtr))*8
	compactIdx := c.MemoryBytes() - int64(m.NNZ())*8 // subtract shared float64 values
	if compactIdx*2 != wideIdx {
		t.Fatalf("index bytes not halved: compact %d vs wide %d", compactIdx, wideIdx)
	}
	if c.MemoryBytes() >= m.MemoryBytes() {
		t.Fatalf("MemoryBytes did not shrink: %d vs %d", c.MemoryBytes(), m.MemoryBytes())
	}
}

// TestCSR32Float32Path: the opt-in float32 value path reports itself, costs
// 4 fewer bytes per entry, and its kernels agree with the wide kernels to
// float32 rounding.
func TestCSR32Float32Path(t *testing.T) {
	m := randBigCSR(600, 500, 8, 9)
	c := CompactFloat32(m)
	if !c.Float32Values() {
		t.Fatal("CompactFloat32 must report float32 values")
	}
	if got, want := c.MemoryBytes(), Compact(m).MemoryBytes()-int64(m.NNZ())*4; got != want {
		t.Fatalf("float32 MemoryBytes = %d want %d", got, want)
	}
	x := randVec(m.Cols(), 3)
	want := make([]float64, m.Rows())
	m.MulVec(want, x)
	got := make([]float64, m.Rows())
	c.MulVec(got, x)
	for i := range got {
		// Per-row error is bounded by the row's absolute sum times the
		// float32 epsilon (with slack for accumulation).
		var lim float64
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			lim += math.Abs(m.val[p] * x[m.col[p]])
		}
		lim = lim*1e-6 + 1e-12
		if d := math.Abs(got[i] - want[i]); d > lim {
			t.Fatalf("float32 MulVec row %d off by %g (limit %g)", i, d, lim)
		}
	}
}

// TestNewCSR32Invariants: the compact constructors reject malformed input
// instead of repairing it.
func TestNewCSR32Invariants(t *testing.T) {
	ok := func() { NewCSR32(2, 3, []int32{0, 1, 2}, []uint32{2, 0}, []float64{1, 2}) }
	ok()
	cases := map[string]func(){
		"rowPtr-length":     func() { NewCSR32(2, 3, []int32{0, 2}, []uint32{0, 1}, []float64{1, 2}) },
		"rowPtr-decreasing": func() { NewCSR32(2, 3, []int32{0, 2, 1}, []uint32{0, 1}, []float64{1, 2}) },
		"rowPtr-start":      func() { NewCSR32(2, 3, []int32{1, 1, 2}, []uint32{0, 1}, []float64{1, 2}) },
		"col-out-of-range":  func() { NewCSR32(2, 3, []int32{0, 1, 2}, []uint32{0, 3}, []float64{1, 2}) },
		"col-unsorted":      func() { NewCSR32(1, 3, []int32{0, 2}, []uint32{1, 0}, []float64{1, 2}) },
		"col-duplicate":     func() { NewCSR32(1, 3, []int32{0, 2}, []uint32{1, 1}, []float64{1, 2}) },
		"val-length":        func() { NewCSR32(2, 3, []int32{0, 1, 2}, []uint32{0, 1}, []float64{1}) },
		"wide-tail":         func() { NewCSR32Wide(1, 2, []int64{0, 3}, []uint32{0, 1}, []float64{1, 2}) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("malformed input accepted")
				}
			}()
			fn()
		})
	}
}

// TestValidate pins the helper's verdicts on well-formed and broken inputs.
func TestValidate(t *testing.T) {
	if err := Validate(3, 4, []int{0, 1, 1, 3}, []int{2, 0, 3}); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	if err := Validate(0, 0, []int{0}, nil); err != nil {
		t.Fatalf("empty matrix rejected: %v", err)
	}
	bad := []struct {
		name       string
		rows, cols int
		rowPtr     []int
		col        []int
		frag       string
	}{
		{"negative-dims", -1, 4, []int{0}, nil, "negative"},
		{"short-rowPtr", 3, 4, []int{0, 1}, []int{0}, "length"},
		{"bad-start", 2, 4, []int{1, 1, 2}, []int{0, 1}, "rowPtr[0]"},
		{"decreasing", 2, 4, []int{0, 2, 1}, []int{0, 1}, "decreases"},
		{"tail-mismatch", 2, 4, []int{0, 1, 3}, []int{0, 1}, "want len(col)"},
		{"col-negative", 1, 4, []int{0, 1}, []int{-1}, "out of range"},
		{"col-too-big", 1, 4, []int{0, 1}, []int{4}, "out of range"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.rows, tc.cols, tc.rowPtr, tc.col)
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

// TestCSR32CompactPreservesTransposeAndPool: compaction carries the pool
// and any cached transpose across.
func TestCSR32CompactPreservesTransposeAndPool(t *testing.T) {
	pool := par.NewPool(4)
	m := randBigCSR(300, 250, 5, 13).SetPool(pool)
	m.CacheTranspose()
	c := Compact(m)
	if c.Pool() != pool {
		t.Fatal("Compact dropped the pool")
	}
	if c.tr == nil || c.tr.Pool() != pool {
		t.Fatal("Compact dropped the cached transpose or its pool")
	}
	c2 := Compact(randBigCSR(300, 250, 5, 14))
	c2.CacheTranspose()
	p2 := par.NewPool(2)
	c2.SetPool(p2)
	if c2.tr.Pool() != p2 {
		t.Fatal("SetPool did not propagate to the compact cached transpose")
	}
}

func TestCSR32RandomizedAgainstCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		m := randCSR(rng, 1+rng.Intn(40), 1+rng.Intn(40), rng.Float64()*0.3)
		c := Compact(m)
		if !c.ToCSR().Equal(m) {
			t.Fatalf("trial %d: round trip broke", trial)
		}
		x := randVec(m.Cols(), int64(trial))
		want := make([]float64, m.Rows())
		got := make([]float64, m.Rows())
		m.MulVec(want, x)
		c.MulVec(got, x)
		if i, ok := bitsEqual(got, want); !ok {
			t.Fatalf("trial %d: MulVec differs at %d", trial, i)
		}
	}
}
