package sparse

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"bepi/internal/par"
)

// mulVecBench is the shared ≥1e6-nnz fixture for the parallel SpMV
// benchmarks, built on first benchmark use only.
var mulVecBench struct {
	once sync.Once
	m    *CSR
	x    []float64
	dst  []float64
}

func mulVecBenchSetup() {
	mulVecBench.once.Do(func() {
		const rows, cols, perRow = 1 << 17, 1 << 17, 10 // ~1.3M stored entries
		mulVecBench.m = randBigCSR(rows, cols, perRow, 1)
		mulVecBench.x = randVec(cols, 2)
		mulVecBench.dst = make([]float64, rows)
	})
}

// benchWidths is the worker-count ladder shared by the SpMV benchmarks:
// 1, 2, 4 and the machine width when distinct.
func benchWidths() []int {
	widths := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		widths = append(widths, n)
	}
	return widths
}

// BenchmarkParallelMulVec measures the row-partitioned SpMV at increasing
// worker counts, GOMAXPROCS pinned to match so workers=1 is the true
// serial baseline.
func BenchmarkParallelMulVec(b *testing.B) {
	mulVecBenchSetup()
	for _, w := range benchWidths() {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(w)
			defer runtime.GOMAXPROCS(prev)
			m := mulVecBench.m.Clone()
			if w > 1 {
				m.SetPool(par.NewPool(w))
			}
			b.SetBytes(int64(m.NNZ() * 16)) // col idx + value per entry
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MulVec(mulVecBench.dst, mulVecBench.x)
			}
		})
	}
}

// BenchmarkCSR32MulVec is BenchmarkParallelMulVec on the compact layout:
// same matrix, same ladder, 12 bytes streamed per entry instead of 16.
// Compare the two benchmarks' per-op times for the bandwidth win.
func BenchmarkCSR32MulVec(b *testing.B) {
	mulVecBenchSetup()
	for _, w := range benchWidths() {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(w)
			defer runtime.GOMAXPROCS(prev)
			m := Compact(mulVecBench.m.Clone())
			if w > 1 {
				m.SetPool(par.NewPool(w))
			}
			b.SetBytes(int64(m.NNZ() * 12)) // uint32 col idx + float64 value
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MulVec(mulVecBench.dst, mulVecBench.x)
			}
		})
	}
}
