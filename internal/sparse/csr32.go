package sparse

import (
	"fmt"
	"math"

	"bepi/internal/par"
)

// maxIndex32 is the exclusive upper bound on dimensions addressable by the
// compact uint32 column indices.
const maxIndex32 = int64(1) << 32

// CSR32 is the bandwidth-lean, immutable counterpart of CSR: column indices
// are uint32, row pointers are int32 when the entry count allows it (int64
// otherwise, chosen at build time), and values are float64 by default with
// an opt-in float32 path. Halving the index width halves the index bytes an
// SpMV streams per stored entry, which is the dominant cost of the
// memory-bound iteration kernels.
//
// The float64-valued kernels perform the exact additions and
// multiplications of the CSR kernels in the same order, so their results
// are bit-identical to CSR at any worker count. The float32 value path
// (CompactFloat32) trades that for another ~4 bytes/entry and is explicitly
// lossy; it is never chosen implicitly.
//
// CSR32 is immutable after construction: there is no mutating API, and the
// constructors reject (rather than repair) malformed input.
type CSR32 struct {
	rows, cols int
	// Exactly one of rowPtr32/rowPtr64 is non-nil.
	rowPtr32 []int32
	rowPtr64 []int64
	col      []uint32
	// Exactly one of val/val32 is non-nil (val for the lossless default).
	val   []float64
	val32 []float32

	// pool, when set, parallelizes the matvec kernels above ParallelMinNNZ
	// by nnz-balanced row partition, exactly like CSR.
	pool *par.Pool
	// tr is the cached transpose built by CacheTranspose; MulVecT runs as
	// a (parallelizable) row-gather over it when present.
	tr *CSR32
	// bounds is the row partition cached by FirstTouch, exactly like
	// CSR.bounds; SetPool invalidates it.
	bounds []int
}

// Compact converts a CSR matrix into the compact layout, sharing the
// float64 value slice (values are identical; only the index arrays shrink).
// It panics if the matrix dimensions exceed the uint32 index range. The
// conversion is lossless: ToCSR reproduces an Equal matrix, and every
// float64 kernel is bit-identical to its CSR counterpart.
func Compact(m *CSR) *CSR32 {
	c := compactIndices(m)
	c.val = m.val
	return c
}

// CompactFloat32 converts a CSR matrix into the compact layout with values
// narrowed to float32. This is the opt-in lossy path: kernels widen each
// stored value back to float64 at multiply time, so results differ from the
// CSR kernels by the value rounding only.
func CompactFloat32(m *CSR) *CSR32 {
	c := compactIndices(m)
	c.val32 = make([]float32, len(m.val))
	for i, v := range m.val {
		c.val32[i] = float32(v)
	}
	return c
}

func compactIndices(m *CSR) *CSR32 {
	if int64(m.cols) > maxIndex32 || int64(m.rows) > maxIndex32 {
		panic(fmt.Sprintf("sparse: Compact %dx%d exceeds uint32 index range", m.rows, m.cols))
	}
	c := &CSR32{rows: m.rows, cols: m.cols, pool: m.pool}
	c.col = make([]uint32, len(m.col))
	for i, j := range m.col {
		c.col[i] = uint32(j)
	}
	// Row pointers: int32 when nnz fits, int64 otherwise. The last entry is
	// the largest, so checking it covers the whole array.
	if nnz := m.rowPtr[m.rows]; int64(nnz) <= math.MaxInt32 {
		c.rowPtr32 = make([]int32, len(m.rowPtr))
		for i, p := range m.rowPtr {
			c.rowPtr32[i] = int32(p)
		}
	} else {
		c.rowPtr64 = make([]int64, len(m.rowPtr))
		for i, p := range m.rowPtr {
			c.rowPtr64[i] = int64(p)
		}
	}
	if m.tr != nil {
		c.tr = compactIndices(m.tr)
		c.tr.val = m.tr.val
	}
	return c
}

// NewCSR32 constructs a compact matrix from raw slices with int32 row
// pointers. Unlike NewCSR it does not repair its input: the slices are used
// as-is and must already satisfy the CSR invariants (monotone row pointers,
// in-range and strictly increasing columns per row); violations panic.
func NewCSR32(rows, cols int, rowPtr []int32, col []uint32, val []float64) *CSR32 {
	if len(col) != len(val) {
		panic(fmt.Sprintf("sparse: col/val length %d/%d", len(col), len(val)))
	}
	if err := validateCompact(rows, cols, rowPtr, col); err != nil {
		panic(err)
	}
	return &CSR32{rows: rows, cols: cols, rowPtr32: rowPtr, col: col, val: val}
}

// NewCSR32Wide is NewCSR32 with int64 row pointers, for matrices whose
// entry count exceeds the int32 range.
func NewCSR32Wide(rows, cols int, rowPtr []int64, col []uint32, val []float64) *CSR32 {
	if len(col) != len(val) {
		panic(fmt.Sprintf("sparse: col/val length %d/%d", len(col), len(val)))
	}
	if err := validateCompact(rows, cols, rowPtr, col); err != nil {
		panic(err)
	}
	return &CSR32{rows: rows, cols: cols, rowPtr64: rowPtr, col: col, val: val}
}

// ToCSR widens the matrix back to the standard CSR layout. For float64
// values the round trip CSR -> Compact -> ToCSR is exact (Equal); for the
// float32 path the widened values carry the float32 rounding.
func (m *CSR32) ToCSR() *CSR {
	rowPtr := make([]int, m.rows+1)
	if m.rowPtr32 != nil {
		for i, p := range m.rowPtr32 {
			rowPtr[i] = int(p)
		}
	} else {
		for i, p := range m.rowPtr64 {
			rowPtr[i] = int(p)
		}
	}
	col := make([]int, len(m.col))
	for i, j := range m.col {
		col[i] = int(j)
	}
	var val []float64
	if m.val != nil {
		val = make([]float64, len(m.val))
		copy(val, m.val)
	} else {
		val = make([]float64, len(m.val32))
		for i, v := range m.val32 {
			val[i] = float64(v)
		}
	}
	return &CSR{rows: m.rows, cols: m.cols, rowPtr: rowPtr, col: col, val: val, pool: m.pool}
}

// Rows returns the number of rows.
func (m *CSR32) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR32) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR32) NNZ() int { return len(m.col) }

// Float32Values reports whether the matrix stores float32 values (the
// lossy CompactFloat32 path) rather than the default float64.
func (m *CSR32) Float32Values() bool { return m.val32 != nil }

// SetPool attaches a parallel pool and returns m; semantics match
// CSR.SetPool (parallel above ParallelMinNNZ, bit-identical results).
func (m *CSR32) SetPool(p *par.Pool) *CSR32 {
	m.pool = p
	m.bounds = nil
	if m.tr != nil {
		m.tr.SetPool(p)
	}
	return m
}

// rowStart returns rowPtr[i] regardless of the pointer width in use.
func (m *CSR32) rowStart(i int) int {
	if m.rowPtr32 != nil {
		return int(m.rowPtr32[i])
	}
	return int(m.rowPtr64[i])
}

// FirstTouch caches the row partition and, on a sticky pool, rewrites each
// partition's index/value segments from its owning worker — semantics match
// CSR.FirstTouch. The rebuilt slices hold identical contents, so the
// layout's immutability contract (values and pattern never change) is kept.
func (m *CSR32) FirstTouch() *CSR32 {
	m.bounds = nil
	if bounds, ok := m.parBounds(); ok {
		if m.pool.Sticky() {
			col := make([]uint32, len(m.col))
			var val []float64
			var val32 []float32
			if m.val != nil {
				val = make([]float64, len(m.val))
			} else {
				val32 = make([]float32, len(m.val32))
			}
			m.pool.ForBounds(bounds, func(_, lo, hi int) {
				s, e := m.rowStart(lo), m.rowStart(hi)
				copy(col[s:e], m.col[s:e])
				if val != nil {
					copy(val[s:e], m.val[s:e])
				} else {
					copy(val32[s:e], m.val32[s:e])
				}
			})
			m.col = col
			if val != nil {
				m.val = val
			} else {
				m.val32 = val32
			}
		}
		m.bounds = bounds
	}
	if m.tr != nil {
		m.tr.FirstTouch()
	}
	return m
}

// Pool returns the attached pool (nil means serial).
func (m *CSR32) Pool() *par.Pool { return m.pool }

// CacheTranspose builds, caches and returns Mᵀ in compact form. While
// cached, MulVecT runs as a row-gather over the transpose, which
// row-partitions across the pool; the gather applies each output element's
// contributions in the same ascending-row order as the serial scatter, so
// results stay bit-identical.
func (m *CSR32) CacheTranspose() *CSR32 {
	if m.tr == nil {
		// Transpose once through the wide layout; this runs once per
		// matrix lifetime, outside any query path.
		wide := m.ToCSR().Transpose()
		if m.val32 != nil {
			m.tr = CompactFloat32(wide)
		} else {
			m.tr = Compact(wide)
		}
		m.tr.pool = m.pool
	}
	return m.tr
}

// parBounds mirrors CSR.parBounds: nnz-balanced row chunks over the pool's
// workers when parallel execution pays off.
func (m *CSR32) parBounds() ([]int, bool) {
	if m.pool.Workers() <= 1 || len(m.col) < ParallelMinNNZ || m.rows < 2 {
		return nil, false
	}
	if m.bounds != nil {
		return m.bounds, true
	}
	if m.rowPtr32 != nil {
		return par.BoundsByPrefixOf(m.rowPtr32, m.pool.Workers()), true
	}
	return par.BoundsByPrefixOf(m.rowPtr64, m.pool.Workers()), true
}

// batchParBounds mirrors CSR.batchParBounds: the parallel threshold scales
// with the batch width, since a K-RHS batch does K× the work per entry.
func (m *CSR32) batchParBounds(width int) ([]int, bool) {
	if width < 1 {
		width = 1
	}
	if m.pool.Workers() <= 1 || len(m.col)*width < ParallelMinNNZ || m.rows < 2 {
		return nil, false
	}
	if m.bounds != nil {
		return m.bounds, true
	}
	if m.rowPtr32 != nil {
		return par.BoundsByPrefixOf(m.rowPtr32, m.pool.Workers()), true
	}
	return par.BoundsByPrefixOf(m.rowPtr64, m.pool.Workers()), true
}

// The range kernels are generic over (row-pointer width × value width) so
// the four layout combinations share one loop body each, delegating the
// per-row accumulation to the shared gather kernels (kernels.go).
// Instantiated with V = float64 the conversion is the identity and the
// compiled loop performs the exact CSR operation sequence, which is what
// keeps the float64 layouts bit-identical to CSR.

func mulVecRange32[P int32 | int64, V float32 | float64](rowPtr []P, col []uint32, val []V, dst, x []float64, lo, hi int) {
	d := PrefetchDistance()
	for i := lo; i < hi; i++ {
		start, end := rowPtr[i], rowPtr[i+1]
		dst[i] = gatherRow4(col[start:end], val[start:end], x, d)
	}
}

// mulVecRangeSeq32 is the sequential per-row gather reserved for the
// cached-transpose MulVecT path, matching the scatter's addition order.
func mulVecRangeSeq32[P int32 | int64, V float32 | float64](rowPtr []P, col []uint32, val []V, dst, x []float64, lo, hi int) {
	d := PrefetchDistance()
	for i := lo; i < hi; i++ {
		start, end := rowPtr[i], rowPtr[i+1]
		dst[i] = gatherRowSeq(col[start:end], val[start:end], x, d)
	}
}

func addMulVecRange32[P int32 | int64, V float32 | float64](rowPtr []P, col []uint32, val []V, dst []float64, alpha float64, x []float64, lo, hi int) {
	d := PrefetchDistance()
	for i := lo; i < hi; i++ {
		start, end := rowPtr[i], rowPtr[i+1]
		dst[i] += alpha * gatherRow4(col[start:end], val[start:end], x, d)
	}
}

func mulVecTScatter32[P int32 | int64, V float32 | float64](rows int, rowPtr []P, col []uint32, val []V, dst, x []float64) {
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			dst[col[p]] += float64(val[p]) * xi
		}
	}
}

func (m *CSR32) mulVecRange(dst, x []float64, lo, hi int) {
	switch {
	case m.rowPtr32 != nil && m.val != nil:
		mulVecRange32(m.rowPtr32, m.col, m.val, dst, x, lo, hi)
	case m.rowPtr32 != nil:
		mulVecRange32(m.rowPtr32, m.col, m.val32, dst, x, lo, hi)
	case m.val != nil:
		mulVecRange32(m.rowPtr64, m.col, m.val, dst, x, lo, hi)
	default:
		mulVecRange32(m.rowPtr64, m.col, m.val32, dst, x, lo, hi)
	}
}

func (m *CSR32) mulVecRangeSeq(dst, x []float64, lo, hi int) {
	switch {
	case m.rowPtr32 != nil && m.val != nil:
		mulVecRangeSeq32(m.rowPtr32, m.col, m.val, dst, x, lo, hi)
	case m.rowPtr32 != nil:
		mulVecRangeSeq32(m.rowPtr32, m.col, m.val32, dst, x, lo, hi)
	case m.val != nil:
		mulVecRangeSeq32(m.rowPtr64, m.col, m.val, dst, x, lo, hi)
	default:
		mulVecRangeSeq32(m.rowPtr64, m.col, m.val32, dst, x, lo, hi)
	}
}

func (m *CSR32) addMulVecRange(dst []float64, alpha float64, x []float64, lo, hi int) {
	switch {
	case m.rowPtr32 != nil && m.val != nil:
		addMulVecRange32(m.rowPtr32, m.col, m.val, dst, alpha, x, lo, hi)
	case m.rowPtr32 != nil:
		addMulVecRange32(m.rowPtr32, m.col, m.val32, dst, alpha, x, lo, hi)
	case m.val != nil:
		addMulVecRange32(m.rowPtr64, m.col, m.val, dst, alpha, x, lo, hi)
	default:
		addMulVecRange32(m.rowPtr64, m.col, m.val32, dst, alpha, x, lo, hi)
	}
}

func (m *CSR32) mulVecBatchRange(dst, x [][]float64, rlo, rhi int) {
	switch {
	case m.rowPtr32 != nil && m.val != nil:
		mulVecBatchRows(m.rowPtr32, m.col, m.val, dst, x, rlo, rhi)
	case m.rowPtr32 != nil:
		mulVecBatchRows(m.rowPtr32, m.col, m.val32, dst, x, rlo, rhi)
	case m.val != nil:
		mulVecBatchRows(m.rowPtr64, m.col, m.val, dst, x, rlo, rhi)
	default:
		mulVecBatchRows(m.rowPtr64, m.col, m.val32, dst, x, rlo, rhi)
	}
}

// MulVec computes dst = M·x with the same dimension rules, pool behavior
// and (for float64 values) bit-identical results as CSR.MulVec.
func (m *CSR32) MulVec(dst, x []float64) {
	if len(dst) != m.rows || len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec dims dst=%d x=%d want %d,%d", len(dst), len(x), m.rows, m.cols))
	}
	if bounds, ok := m.parBounds(); ok {
		m.pool.ForBounds(bounds, func(_, lo, hi int) { m.mulVecRange(dst, x, lo, hi) })
		return
	}
	m.mulVecRange(dst, x, 0, m.rows)
}

// MulVecBatch computes dst[k] = M·x[k] for every right-hand side, row-outer
// and RHS-interleaved like CSR.MulVecBatch: the compact index arrays are
// streamed once per batch, with groups of four RHS sharing each loaded
// entry, and every output bit-identical to MulVec per RHS.
func (m *CSR32) MulVecBatch(dst, x [][]float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("sparse: MulVecBatch got %d dst vectors for %d rhs", len(dst), len(x)))
	}
	for k := range x {
		if len(dst[k]) != m.rows || len(x[k]) != m.cols {
			panic(fmt.Sprintf("sparse: MulVecBatch dims dst=%d x=%d want %d,%d",
				len(dst[k]), len(x[k]), m.rows, m.cols))
		}
	}
	if bounds, ok := m.batchParBounds(len(x)); ok {
		m.pool.ForBounds(bounds, func(_, lo, hi int) { m.mulVecBatchRange(dst, x, lo, hi) })
		return
	}
	m.mulVecBatchRange(dst, x, 0, m.rows)
}

// MulVecT computes dst = Mᵀ·x: the serial scatter loop without a cached
// transpose, a pool-partitioned row gather over it after CacheTranspose.
func (m *CSR32) MulVecT(dst, x []float64) {
	if len(dst) != m.cols || len(x) != m.rows {
		panic(fmt.Sprintf("sparse: MulVecT dims dst=%d x=%d want %d,%d", len(dst), len(x), m.cols, m.rows))
	}
	if m.tr != nil {
		tr := m.tr
		if bounds, ok := tr.parBounds(); ok {
			tr.pool.ForBounds(bounds, func(_, lo, hi int) { tr.mulVecRangeSeq(dst, x, lo, hi) })
			return
		}
		tr.mulVecRangeSeq(dst, x, 0, tr.rows)
		return
	}
	switch {
	case m.rowPtr32 != nil && m.val != nil:
		mulVecTScatter32(m.rows, m.rowPtr32, m.col, m.val, dst, x)
	case m.rowPtr32 != nil:
		mulVecTScatter32(m.rows, m.rowPtr32, m.col, m.val32, dst, x)
	case m.val != nil:
		mulVecTScatter32(m.rows, m.rowPtr64, m.col, m.val, dst, x)
	default:
		mulVecTScatter32(m.rows, m.rowPtr64, m.col, m.val32, dst, x)
	}
}

// AddMulVec computes dst += alpha · M·x, row-partitioned like MulVec. It is
// the fusion epilogue the Schur operator uses to fold the H21 term into the
// H22 product without an intermediate vector or an extra full-vector pass.
func (m *CSR32) AddMulVec(dst []float64, alpha float64, x []float64) {
	if len(dst) != m.rows || len(x) != m.cols {
		panic("sparse: AddMulVec dimension mismatch")
	}
	if bounds, ok := m.parBounds(); ok {
		m.pool.ForBounds(bounds, func(_, lo, hi int) { m.addMulVecRange(dst, alpha, x, lo, hi) })
		return
	}
	m.addMulVecRange(dst, alpha, x, 0, m.rows)
}

// MemoryBytes reports the storage footprint: 8 (or 4, float32 path) bytes
// per value, 4 per column index, and 4 or 8 per row pointer as chosen at
// build time. Compare CSR.MemoryBytes' 16 bytes per entry + 8 per row.
func (m *CSR32) MemoryBytes() int64 {
	b := int64(len(m.col)) * 4
	if m.val != nil {
		b += int64(len(m.val)) * 8
	} else {
		b += int64(len(m.val32)) * 4
	}
	if m.rowPtr32 != nil {
		b += int64(len(m.rowPtr32)) * 4
	} else {
		b += int64(len(m.rowPtr64)) * 8
	}
	return b
}

// String returns a short shape/nnz description.
func (m *CSR32) String() string {
	return fmt.Sprintf("CSR32{%dx%d, nnz=%d}", m.rows, m.cols, m.NNZ())
}
