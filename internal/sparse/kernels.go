package sparse

import "unsafe"

// The row-gather kernels shared by the CSR and CSR32 layouts, generic over
// the column-index type (int for CSR, uint32 for CSR32) and value type
// (float64, plus CSR32's opt-in float32). Instantiated with V = float64 the
// conversion is the identity, so both layouts compile to the exact same
// operation sequence — that is the bit-identity contract between them.
//
// gatherRow4 is the four-lane accumulation behind MulVec, AddMulVec and the
// per-RHS tail of MulVecBatch: four independent accumulator lanes walk the
// row in stride-4 steps (remainder entries fold into lane 0) and combine as
// (s0+s1)+(s2+s3). Breaking the single loop-carried FP-add chain is worth
// ~2× on long rows; the lane order is part of the layout contract.
//
// dist > 0 prepends a prefetching copy of the stride-4 loop that touches
// the gather targets dist entries ahead (see prefetch.go); it performs the
// same arithmetic in the same order, so results are identical at any dist.
func gatherRow4[C int | uint32, V float32 | float64](cols []C, vals []V, x []float64, dist int) float64 {
	var s0, s1, s2, s3 float64
	p := 0
	if dist > 0 {
		for ; p+dist+4 <= len(cols); p += 4 {
			prefetchT0(unsafe.Pointer(&x[cols[p+dist]]))
			prefetchT0(unsafe.Pointer(&x[cols[p+dist+1]]))
			prefetchT0(unsafe.Pointer(&x[cols[p+dist+2]]))
			prefetchT0(unsafe.Pointer(&x[cols[p+dist+3]]))
			s0 += float64(vals[p]) * x[cols[p]]
			s1 += float64(vals[p+1]) * x[cols[p+1]]
			s2 += float64(vals[p+2]) * x[cols[p+2]]
			s3 += float64(vals[p+3]) * x[cols[p+3]]
		}
	}
	for ; p+4 <= len(cols); p += 4 {
		s0 += float64(vals[p]) * x[cols[p]]
		s1 += float64(vals[p+1]) * x[cols[p+1]]
		s2 += float64(vals[p+2]) * x[cols[p+2]]
		s3 += float64(vals[p+3]) * x[cols[p+3]]
	}
	for ; p < len(cols); p++ {
		s0 += float64(vals[p]) * x[cols[p]]
	}
	return (s0 + s1) + (s2 + s3)
}

// gatherRowSeq is the strictly sequential per-row gather reserved for the
// cached-transpose MulVecT path: the scatter loop it replaces applies each
// output element's contributions one at a time in ascending row order, and
// only the sequential gather reproduces that addition order bit for bit.
// Prefetch follows the same pattern as gatherRow4 without reordering sums.
func gatherRowSeq[C int | uint32, V float32 | float64](cols []C, vals []V, x []float64, dist int) float64 {
	var s float64
	p := 0
	if dist > 0 {
		for ; p+dist < len(cols); p++ {
			prefetchT0(unsafe.Pointer(&x[cols[p+dist]]))
			s += float64(vals[p]) * x[cols[p]]
		}
	}
	for ; p < len(cols); p++ {
		s += float64(vals[p]) * x[cols[p]]
	}
	return s
}

// mulVecBatchRows is the RHS-interleaved batch kernel over rows [rlo, rhi):
// one walk over a row's indices and values feeds a register-blocked pair of
// right-hand sides at once, so each load of cols[p]/vals[p] is amortized
// over two multiplies and — more importantly on the memory-bound gather —
// the interleaved accumulation chains give the core twice the independent
// misses to overlap. Two RHS is the widest block whose live state
// (8 accumulators + 4 values + 4 indices) still fits the FP register file;
// at four RHS the 16 accumulators spill to the stack every iteration and
// the reloads cost more than the sharing saves. The pair body is written
// out here rather than called per row: it is far over the inlining budget,
// and a call per RHS pair per row costs more than the interleaving saves on
// short rows. Per RHS the accumulation is exactly gatherRow4's: lane r
// collects entries p ≡ r (mod 4), the remainder folds into lane 0, and the
// combine is (s0+s1)+(s2+s3), so every output is bit-identical to the
// single-RHS kernel. A trailing odd RHS (so any batch of width 1) goes
// through gatherRow4 itself. Prefetch (dist > 0) alternates the lookahead
// touches between the pair's x vectors.
func mulVecBatchRows[P int | int32 | int64, C int | uint32, V float32 | float64](rowPtr []P, col []C, val []V, dst, x [][]float64, rlo, rhi int) {
	d := PrefetchDistance()
	for i := rlo; i < rhi; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		cols := col[lo:hi]
		vals := val[lo:hi]
		k := 0
		for ; k+2 <= len(x); k += 2 {
			x0, x1 := x[k], x[k+1]
			var s00, s01, s02, s03 float64
			var s10, s11, s12, s13 float64
			p := 0
			if d > 0 {
				for ; p+d+4 <= len(cols); p += 4 {
					prefetchT0(unsafe.Pointer(&x0[cols[p+d]]))
					prefetchT0(unsafe.Pointer(&x1[cols[p+d+1]]))
					prefetchT0(unsafe.Pointer(&x0[cols[p+d+2]]))
					prefetchT0(unsafe.Pointer(&x1[cols[p+d+3]]))
					c0, c1, c2, c3 := cols[p], cols[p+1], cols[p+2], cols[p+3]
					v0, v1, v2, v3 := float64(vals[p]), float64(vals[p+1]), float64(vals[p+2]), float64(vals[p+3])
					s00 += v0 * x0[c0]
					s01 += v1 * x0[c1]
					s02 += v2 * x0[c2]
					s03 += v3 * x0[c3]
					s10 += v0 * x1[c0]
					s11 += v1 * x1[c1]
					s12 += v2 * x1[c2]
					s13 += v3 * x1[c3]
				}
			}
			for ; p+4 <= len(cols); p += 4 {
				c0, c1, c2, c3 := cols[p], cols[p+1], cols[p+2], cols[p+3]
				v0, v1, v2, v3 := float64(vals[p]), float64(vals[p+1]), float64(vals[p+2]), float64(vals[p+3])
				s00 += v0 * x0[c0]
				s01 += v1 * x0[c1]
				s02 += v2 * x0[c2]
				s03 += v3 * x0[c3]
				s10 += v0 * x1[c0]
				s11 += v1 * x1[c1]
				s12 += v2 * x1[c2]
				s13 += v3 * x1[c3]
			}
			for ; p < len(cols); p++ {
				c := cols[p]
				v := float64(vals[p])
				s00 += v * x0[c]
				s10 += v * x1[c]
			}
			dst[k][i] = (s00 + s01) + (s02 + s03)
			dst[k+1][i] = (s10 + s11) + (s12 + s13)
		}
		for ; k < len(x); k++ {
			dst[k][i] = gatherRow4(cols, vals, x[k], d)
		}
	}
}
