package sparse

import (
	"testing"

	"bepi/internal/par"
)

// TestInterleavedBatchBitIdentical is the contract test of the
// RHS-interleaved MulVecBatch: at every batch width — below, at, and above
// the 4-RHS register block — each output must equal a serial MulVec on that
// RHS by representation (Float64bits), in both layouts, serially and at
// several worker counts, across the pathological shapes.
func TestInterleavedBatchBitIdentical(t *testing.T) {
	for name, m := range csr32Cases() {
		t.Run(name, func(t *testing.T) {
			rows, cols := m.Rows(), m.Cols()
			for _, width := range []int{1, 2, 3, 4, 5, 8, 16} {
				xs := make([][]float64, width)
				want := make([][]float64, width)
				for k := range xs {
					xs[k] = randVec(cols, int64(100+k))
					want[k] = make([]float64, rows)
					m.mulVecRange(want[k], xs[k], 0, rows) // serial per-RHS reference
				}
				for _, workers := range []int{1, 2, 8} {
					run := func(layout string, mul func(dst, x [][]float64)) {
						got := make([][]float64, width)
						for k := range got {
							got[k] = make([]float64, rows)
						}
						mul(got, xs)
						for k := range got {
							if i, ok := bitsEqual(got[k], want[k]); !ok {
								t.Fatalf("%s width=%d workers=%d rhs %d differs at %d: %v vs %v",
									layout, width, workers, k, i, got[k][i], want[k][i])
							}
						}
					}
					c := m.Clone()
					c32 := Compact(m.Clone())
					if workers > 1 {
						pool := par.NewPool(workers)
						c.SetPool(pool)
						c32.SetPool(pool)
					}
					run("CSR", c.MulVecBatch)
					run("CSR32", c32.MulVecBatch)
				}
			}
		})
	}
}

// TestInterleavedBatchGateScalesWithWidth: the parallel gate of MulVecBatch
// must count the work of the whole batch (nnz × width), not of a single
// apply — a matrix below ParallelMinNNZ alone crosses it with enough RHS.
func TestInterleavedBatchGateScalesWithWidth(t *testing.T) {
	m := randBigCSR(600, 500, 12, 33)
	if m.NNZ() >= ParallelMinNNZ || m.NNZ()*8 < ParallelMinNNZ {
		t.Fatalf("fixture nnz=%d does not straddle the gate (min %d)", m.NNZ(), ParallelMinNNZ)
	}
	m.SetPool(par.NewPool(4))
	if _, ok := m.batchParBounds(1); ok {
		t.Fatal("width-1 batch below ParallelMinNNZ must stay serial")
	}
	if _, ok := m.batchParBounds(8); !ok {
		t.Fatal("width-8 batch over ParallelMinNNZ total work must parallelize")
	}
	c := Compact(m.Clone()).SetPool(par.NewPool(4))
	if _, ok := c.batchParBounds(1); ok {
		t.Fatal("CSR32 width-1 batch below ParallelMinNNZ must stay serial")
	}
	if _, ok := c.batchParBounds(8); !ok {
		t.Fatal("CSR32 width-8 batch over ParallelMinNNZ total work must parallelize")
	}

	// And crossing the gate must not change results: parallel batch output is
	// bit-identical to the serial per-RHS kernels.
	const width = 8
	xs := make([][]float64, width)
	want := make([][]float64, width)
	got := make([][]float64, width)
	for k := range xs {
		xs[k] = randVec(m.Cols(), int64(40+k))
		want[k] = make([]float64, m.Rows())
		got[k] = make([]float64, m.Rows())
		m.mulVecRange(want[k], xs[k], 0, m.Rows())
	}
	for rep := 0; rep < 3; rep++ { // repeated: chunk→goroutine placement varies
		m.MulVecBatch(got, xs)
		for k := range got {
			if i, ok := bitsEqual(got[k], want[k]); !ok {
				t.Fatalf("parallel batch rhs %d differs at %d", k, i)
			}
		}
	}
}

// TestInterleavedBatchKernelTails pins the 4×4 kernel's edge handling: row
// lengths 0..9 exercise every remainder of the stride-4 nonzero loop, and
// widths 4k+r every tail of the RHS grouping.
func TestInterleavedBatchKernelTails(t *testing.T) {
	const cols = 64
	coo := NewCOO(10, cols)
	for i := 0; i < 10; i++ {
		for e := 0; e < i; e++ { // row i has exactly i entries
			coo.Add(i, (i*7+e*11)%cols, float64(i+e)*0.375-2)
		}
	}
	m := coo.ToCSR()
	for width := 1; width <= 9; width++ {
		xs := make([][]float64, width)
		want := make([][]float64, width)
		got := make([][]float64, width)
		for k := range xs {
			xs[k] = randVec(cols, int64(7*width+k))
			want[k] = make([]float64, m.Rows())
			got[k] = make([]float64, m.Rows())
			m.MulVec(want[k], xs[k])
		}
		m.MulVecBatch(got, xs)
		for k := range got {
			if i, ok := bitsEqual(got[k], want[k]); !ok {
				t.Fatalf("width=%d rhs %d differs at row %d", width, k, i)
			}
		}
	}
}

// TestInterleavedBatchLargeParallelRMAT is the scaled-up property test: an
// RMAT-like skewed matrix well past the gate, the full width sweep, under
// real parallel execution. Primarily a -race target.
func TestInterleavedBatchLargeParallelRMAT(t *testing.T) {
	m := randBigCSR(3000, 2500, 20, 55)
	if m.NNZ() < ParallelMinNNZ {
		t.Fatalf("fixture too small: nnz=%d", m.NNZ())
	}
	for _, width := range []int{3, 4, 5, 16} {
		xs := make([][]float64, width)
		want := make([][]float64, width)
		for k := range xs {
			xs[k] = randVec(m.Cols(), int64(200+k))
			want[k] = make([]float64, m.Rows())
			m.MulVec(want[k], xs[k])
		}
		for _, workers := range []int{2, 8} {
			p := m.Clone().SetPool(par.NewPool(workers))
			got := make([][]float64, width)
			for k := range got {
				got[k] = make([]float64, m.Rows())
			}
			p.MulVecBatch(got, xs)
			for k := range got {
				if i, ok := bitsEqual(got[k], want[k]); !ok {
					t.Fatalf("width=%d workers=%d rhs %d differs at %d", width, workers, k, i)
				}
			}
		}
	}
}

// TestInterleavedBatchMatchesRowOuter cross-checks the interleaved kernel
// against a straightforward row-outer re-implementation (one RHS at a time
// through the four-lane loop), the kernel MulVecBatch shipped before
// interleaving. Identical representation is the whole point: interleaving
// reorders traversal, never any per-RHS accumulation.
func TestInterleavedBatchMatchesRowOuter(t *testing.T) {
	m := randBigCSR(800, 700, 9, 77)
	rowPtr, col, val := m.RowPtr(), m.ColIdx(), m.Values()
	for _, width := range []int{4, 7, 16} {
		xs := make([][]float64, width)
		want := make([][]float64, width)
		got := make([][]float64, width)
		for k := range xs {
			xs[k] = randVec(m.Cols(), int64(300+k))
			want[k] = make([]float64, m.Rows())
			got[k] = make([]float64, m.Rows())
		}
		for i := 0; i < m.Rows(); i++ {
			cols := col[rowPtr[i]:rowPtr[i+1]]
			vals := val[rowPtr[i]:rowPtr[i+1]]
			for k := range xs {
				xk := xs[k]
				var s0, s1, s2, s3 float64
				p := 0
				for ; p+4 <= len(cols); p += 4 {
					s0 += vals[p] * xk[cols[p]]
					s1 += vals[p+1] * xk[cols[p+1]]
					s2 += vals[p+2] * xk[cols[p+2]]
					s3 += vals[p+3] * xk[cols[p+3]]
				}
				for ; p < len(cols); p++ {
					s0 += vals[p] * xk[cols[p]]
				}
				want[k][i] = (s0 + s1) + (s2 + s3)
			}
		}
		m.MulVecBatch(got, xs)
		for k := range got {
			if i, ok := bitsEqual(got[k], want[k]); !ok {
				t.Fatalf("width=%d rhs %d differs from row-outer at %d", width, k, i)
			}
		}
	}
}

// TestInterleavedBatchDimChecks: mismatched batch shapes must panic like the
// single-RHS kernels.
func TestInterleavedBatchDimChecks(t *testing.T) {
	m := randBigCSR(20, 30, 2, 9)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	x := [][]float64{randVec(30, 1)}
	mustPanic("dst count", func() { m.MulVecBatch(make([][]float64, 2), x) })
	mustPanic("dst len", func() { m.MulVecBatch([][]float64{make([]float64, 19)}, x) })
	mustPanic("x len", func() {
		m.MulVecBatch([][]float64{make([]float64, 20)}, [][]float64{randVec(29, 1)})
	})
	c := Compact(m)
	mustPanic("CSR32 dst count", func() { c.MulVecBatch(make([][]float64, 2), x) })
	mustPanic("CSR32 dst len", func() { c.MulVecBatch([][]float64{make([]float64, 19)}, x) })
}
