package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialization of CSR matrices. The format is a fixed little-endian
// layout so preprocessed indexes can be persisted and memory-mapped-style
// reloaded without re-running the (expensive) preprocessing phase:
//
//	magic   uint32  'BePI' (0x42655049)
//	version uint32  1
//	rows    int64
//	cols    int64
//	nnz     int64
//	rowPtr  (rows+1) × int64
//	col     nnz × int64
//	val     nnz × float64

const (
	csrMagic   = 0x42655049
	csrVersion = 1
)

// WriteTo serializes the matrix. It implements io.WriterTo.
func (m *CSR) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	writeU32 := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		k, err := bw.Write(b[:])
		n += int64(k)
		return err
	}
	writeU64 := func(v uint64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		k, err := bw.Write(b[:])
		n += int64(k)
		return err
	}
	if err := writeU32(csrMagic); err != nil {
		return n, err
	}
	if err := writeU32(csrVersion); err != nil {
		return n, err
	}
	for _, v := range []int{m.rows, m.cols, m.NNZ()} {
		if err := writeU64(uint64(v)); err != nil {
			return n, err
		}
	}
	for _, v := range m.rowPtr {
		if err := writeU64(uint64(v)); err != nil {
			return n, err
		}
	}
	for _, v := range m.col {
		if err := writeU64(uint64(v)); err != nil {
			return n, err
		}
	}
	for _, v := range m.val {
		if err := writeU64(math.Float64bits(v)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadCSR deserializes a matrix written by WriteTo. It reads exactly the
// bytes the matrix occupies (no read-ahead), so matrices can be read back
// from a concatenated stream; wrap the source in a bufio.Reader for speed.
func ReadCSR(r io.Reader) (*CSR, error) {
	var head [4 + 4 + 3*8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("sparse: reading header: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(head[0:]); magic != csrMagic {
		return nil, fmt.Errorf("sparse: bad magic %#x", magic)
	}
	if version := binary.LittleEndian.Uint32(head[4:]); version != csrVersion {
		return nil, fmt.Errorf("sparse: unsupported version %d", version)
	}
	rows := int(int64(binary.LittleEndian.Uint64(head[8:])))
	cols := int(int64(binary.LittleEndian.Uint64(head[16:])))
	nnz := int(int64(binary.LittleEndian.Uint64(head[24:])))
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: corrupt header %dx%d nnz=%d", rows, cols, nnz)
	}
	rowPtr, err := readIntArray(r, rows+1)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading rowPtr: %w", err)
	}
	if rowPtr[rows] != nnz {
		return nil, fmt.Errorf("sparse: rowPtr end %d != nnz %d", rowPtr[rows], nnz)
	}
	col, err := readIntArray(r, nnz)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading col: %w", err)
	}
	val, err := ReadFloatArray(r, nnz)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading val: %w", err)
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, col: col, val: val}, nil
}

// readChunkEntries is how many 8-byte values the array readers consume per
// read. Chunking means a corrupt header claiming an enormous array fails
// with an EOF as soon as the stream runs dry, instead of attempting one
// giant allocation up front.
const readChunkEntries = 1 << 16

// readIntArray reads n little-endian uint64 values as ints.
func readIntArray(r io.Reader, n int) ([]int, error) {
	out := make([]int, 0, minInt(n, readChunkEntries))
	buf := make([]byte, 8*minInt(n, readChunkEntries))
	for remaining := n; remaining > 0; {
		c := minInt(remaining, readChunkEntries)
		if _, err := io.ReadFull(r, buf[:8*c]); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			out = append(out, int(int64(binary.LittleEndian.Uint64(buf[8*i:]))))
		}
		remaining -= c
	}
	return out, nil
}

// ReadFloatArray reads n little-endian float64 values, chunked like
// readIntArray.
func ReadFloatArray(r io.Reader, n int) ([]float64, error) {
	out := make([]float64, 0, minInt(n, readChunkEntries))
	buf := make([]byte, 8*minInt(n, readChunkEntries))
	for remaining := n; remaining > 0; {
		c := minInt(remaining, readChunkEntries)
		if _, err := io.ReadFull(r, buf[:8*c]); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:])))
		}
		remaining -= c
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
