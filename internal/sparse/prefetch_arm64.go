//go:build arm64

package sparse

import "unsafe"

// prefetchT0 issues a PRFM PLDL1KEEP hint for the cache line holding p.
// Purely a hint — no fault, no architectural effect — so kernels stay
// bit-identical with it on or off.
//
//go:noescape
func prefetchT0(p unsafe.Pointer)
