package sparse

import (
	"math"
	"math/rand"
	"testing"

	"bepi/internal/par"
)

// randBigCSR builds a random matrix with roughly nnzPerRow entries per row,
// deterministic in seed. A sprinkling of rows is left empty and a few are
// made very heavy so the nnz-balanced partition is exercised.
func randBigCSR(rows, cols, nnzPerRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		k := nnzPerRow
		switch {
		case rng.Intn(17) == 0:
			k = 0 // empty row
		case rng.Intn(29) == 0:
			k = 20 * nnzPerRow // heavy row
		}
		for e := 0; e < k; e++ {
			coo.Add(i, rng.Intn(cols), rng.NormFloat64())
		}
	}
	return coo.ToCSR()
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// bitsEqual compares float slices by representation: parallel kernels
// promise bit-identical output, not just close output.
func bitsEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// TestParallelMulVecBitIdentical checks every parallel matvec kernel
// against its serial twin at several worker counts, on a matrix big enough
// to clear ParallelMinNNZ.
func TestParallelMulVecBitIdentical(t *testing.T) {
	const rows, cols = 3000, 2500
	m := randBigCSR(rows, cols, 20, 1)
	if m.NNZ() < ParallelMinNNZ {
		t.Fatalf("test matrix too small: nnz=%d < %d", m.NNZ(), ParallelMinNNZ)
	}
	x := randVec(cols, 2)
	xt := randVec(rows, 3)

	wantMul := make([]float64, rows)
	m.MulVec(wantMul, x)
	wantAdd := randVec(rows, 4)
	wantAddInit := append([]float64(nil), wantAdd...)
	m.AddMulVec(wantAdd, 0.7, x)
	wantT := make([]float64, cols)
	m.MulVecT(wantT, xt)

	const batch = 5
	xb := make([][]float64, batch)
	wantB := make([][]float64, batch)
	for k := range xb {
		xb[k] = randVec(cols, int64(10+k))
		wantB[k] = make([]float64, rows)
	}
	m.MulVecBatch(wantB, xb)

	for _, workers := range []int{2, 3, 8} {
		p := m.Clone().SetPool(par.NewPool(workers))
		p.CacheTranspose()

		got := make([]float64, rows)
		p.MulVec(got, x)
		if i, ok := bitsEqual(got, wantMul); !ok {
			t.Fatalf("workers=%d MulVec differs at %d: %v vs %v", workers, i, got[i], wantMul[i])
		}

		gotAdd := append([]float64(nil), wantAddInit...)
		p.AddMulVec(gotAdd, 0.7, x)
		if i, ok := bitsEqual(gotAdd, wantAdd); !ok {
			t.Fatalf("workers=%d AddMulVec differs at %d", workers, i)
		}

		gotT := make([]float64, cols)
		p.MulVecT(gotT, xt)
		if i, ok := bitsEqual(gotT, wantT); !ok {
			t.Fatalf("workers=%d MulVecT differs at %d: %v vs %v", workers, i, gotT[i], wantT[i])
		}

		gotB := make([][]float64, batch)
		for k := range gotB {
			gotB[k] = make([]float64, rows)
		}
		p.MulVecBatch(gotB, xb)
		for k := range gotB {
			if i, ok := bitsEqual(gotB[k], wantB[k]); !ok {
				t.Fatalf("workers=%d MulVecBatch rhs %d differs at %d", workers, k, i)
			}
		}
	}
}

// TestParallelMulVecPathological covers the shapes where partitioning could
// go wrong: fewer rows than workers, single-row matrices, all-empty rows,
// and one row holding nearly all entries.
func TestParallelMulVecPathological(t *testing.T) {
	pool := par.NewPool(8)

	// One dense mega-row past the threshold, everything else empty.
	coo := NewCOO(4, ParallelMinNNZ)
	for j := 0; j < ParallelMinNNZ; j++ {
		coo.Add(2, j, float64(j%13)-6)
	}
	mega := coo.ToCSR()
	x := randVec(mega.Cols(), 5)
	want := make([]float64, 4)
	mega.MulVec(want, x)
	got := make([]float64, 4)
	mega.Clone().SetPool(pool).MulVec(got, x)
	if i, ok := bitsEqual(got, want); !ok {
		t.Fatalf("mega-row MulVec differs at %d", i)
	}

	// Entirely empty matrix with a pool attached.
	empty := Zero(10, 10).SetPool(pool)
	dst := randVec(10, 6)
	empty.MulVec(dst, randVec(10, 7))
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("empty matrix wrote dst[%d]=%v", i, v)
		}
	}

	// Below-threshold matrix must take the serial path and still be right.
	small := randBigCSR(40, 40, 3, 8)
	xs := randVec(40, 9)
	w := make([]float64, 40)
	small.MulVec(w, xs)
	g := make([]float64, 40)
	small.Clone().SetPool(pool).MulVec(g, xs)
	if i, ok := bitsEqual(g, w); !ok {
		t.Fatalf("small MulVec differs at %d", i)
	}
}

// TestCacheTransposeMulVecT checks the gather path against the scatter path
// under == float semantics. (Representations may differ only in zero sign:
// the scatter skips x[i]==0 while the gather multiplies through, which can
// turn -0 into +0 — numerically identical.)
func TestCacheTransposeMulVecT(t *testing.T) {
	for trial := int64(0); trial < 5; trial++ {
		m := randBigCSR(300, 200, 4, 20+trial)
		x := randVec(m.Rows(), 30+trial)
		for i := 0; i < len(x); i += 7 {
			x[i] = 0 // exercise the scatter's zero-skip
		}
		want := make([]float64, m.Cols())
		m.MulVecT(want, x)
		c := m.Clone()
		tr := c.CacheTranspose()
		if !tr.Equal(m.Transpose()) {
			t.Fatal("CacheTranspose differs from Transpose")
		}
		got := make([]float64, m.Cols())
		c.MulVecT(got, x)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("trial %d: MulVecT[%d] = %v via transpose, %v via scatter", trial, j, got[j], want[j])
			}
		}
	}
}

func TestSetPoolPropagatesToCachedTranspose(t *testing.T) {
	m := randBigCSR(100, 100, 3, 40)
	tr := m.CacheTranspose()
	pool := par.NewPool(4)
	m.SetPool(pool)
	if tr.Pool() != pool {
		t.Fatal("SetPool did not propagate to the cached transpose")
	}
	// Caching after the pool is attached propagates too.
	m2 := randBigCSR(100, 100, 3, 41).SetPool(pool)
	if m2.CacheTranspose().Pool() != pool {
		t.Fatal("CacheTranspose did not inherit the pool")
	}
}

func TestCOOAppend(t *testing.T) {
	a := NewCOO(4, 4)
	a.Add(0, 1, 2)
	b := NewCOO(4, 4)
	b.Add(3, 2, 5)
	b.Add(0, 1, 1) // duplicate coordinate accumulates on ToCSR
	a.Append(b)
	m := a.ToCSR()
	if m.At(0, 1) != 3 || m.At(3, 2) != 5 || m.NNZ() != 2 {
		t.Fatalf("append merge wrong: %v", m)
	}
}
