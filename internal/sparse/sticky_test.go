package sparse

import (
	"math"
	"testing"

	"bepi/internal/par"
)

// TestStickyFirstTouchBitIdentical: FirstTouch on a sticky pool rewrites the
// index/value backing arrays from the owning workers and caches the row
// partition — neither may change any kernel's output by a single bit, in
// either layout, pinned or not.
func TestStickyFirstTouchBitIdentical(t *testing.T) {
	m := randBigCSR(3000, 2500, 20, 88)
	if m.NNZ() < ParallelMinNNZ {
		t.Fatalf("fixture too small: nnz=%d", m.NNZ())
	}
	x := randVec(m.Cols(), 2)
	xt := randVec(m.Rows(), 3)
	const batch = 4
	xb := make([][]float64, batch)
	wantB := make([][]float64, batch)
	for k := range xb {
		xb[k] = randVec(m.Cols(), int64(10+k))
		wantB[k] = make([]float64, m.Rows())
	}
	wantMul := make([]float64, m.Rows())
	m.MulVec(wantMul, x)
	wantT := make([]float64, m.Cols())
	m.MulVecT(wantT, xt)
	m.MulVecBatch(wantB, xb)

	for _, pin := range []bool{false, true} {
		for _, workers := range []int{2, 8} {
			pool := par.NewStickyPool(workers, pin)
			c := m.Clone().SetPool(pool)
			c.CacheTranspose()
			c.FirstTouch()
			if c.bounds == nil {
				t.Fatalf("pin=%v workers=%d: FirstTouch did not cache the partition", pin, workers)
			}
			if !c.Equal(m) {
				t.Fatalf("pin=%v workers=%d: FirstTouch changed the matrix", pin, workers)
			}
			for rep := 0; rep < 3; rep++ {
				got := make([]float64, m.Rows())
				c.MulVec(got, x)
				if i, ok := bitsEqual(got, wantMul); !ok {
					t.Fatalf("pin=%v workers=%d MulVec differs at %d", pin, workers, i)
				}
				gotT := make([]float64, m.Cols())
				c.MulVecT(gotT, xt)
				if i, ok := bitsEqual(gotT, wantT); !ok {
					t.Fatalf("pin=%v workers=%d MulVecT differs at %d", pin, workers, i)
				}
				gotB := make([][]float64, batch)
				for k := range gotB {
					gotB[k] = make([]float64, m.Rows())
				}
				c.MulVecBatch(gotB, xb)
				for k := range gotB {
					if i, ok := bitsEqual(gotB[k], wantB[k]); !ok {
						t.Fatalf("pin=%v workers=%d batch rhs %d differs at %d", pin, workers, k, i)
					}
				}
			}

			// Compact layout through the same pool.
			c32 := Compact(m.Clone()).SetPool(pool).FirstTouch()
			if c32.bounds == nil {
				t.Fatalf("pin=%v workers=%d: CSR32 FirstTouch did not cache the partition", pin, workers)
			}
			got := make([]float64, m.Rows())
			c32.MulVec(got, x)
			if i, ok := bitsEqual(got, wantMul); !ok {
				t.Fatalf("pin=%v workers=%d CSR32 MulVec differs at %d", pin, workers, i)
			}
			pool.Close()
		}
	}
}

// TestStickyFirstTouchBelowThreshold: FirstTouch must be a no-op (no cached
// bounds, unchanged slices) on matrices the parallel gate rejects, and on
// serial or plain pools it must only cache bounds, never reallocate.
func TestStickyFirstTouchBelowThreshold(t *testing.T) {
	small := randBigCSR(40, 40, 3, 8).SetPool(par.NewStickyPool(4, false))
	colBefore := &small.col[0]
	small.FirstTouch()
	if small.bounds != nil {
		t.Fatal("below-threshold FirstTouch cached a partition")
	}
	if &small.col[0] != colBefore {
		t.Fatal("below-threshold FirstTouch reallocated the index array")
	}

	big := randBigCSR(3000, 2500, 20, 12)
	plain := big.Clone().SetPool(par.NewPool(4))
	colBefore = &plain.col[0]
	plain.FirstTouch()
	if plain.bounds == nil {
		t.Fatal("plain-pool FirstTouch did not cache the partition")
	}
	if &plain.col[0] != colBefore {
		t.Fatal("plain-pool FirstTouch reallocated (only sticky pools first-touch)")
	}
	// SetPool must drop the stale partition: a different worker count needs
	// different bounds.
	plain.SetPool(par.NewPool(2))
	if plain.bounds != nil {
		t.Fatal("SetPool kept a stale cached partition")
	}

	// CSR32 float32 value path: FirstTouch must rewrite val32, not val.
	c := CompactFloat32(big.Clone()).SetPool(par.NewStickyPool(4, false))
	want := make([]float64, big.Rows())
	x := randVec(big.Cols(), 9)
	c.MulVec(want, x)
	c.FirstTouch()
	got := make([]float64, big.Rows())
	c.MulVec(got, x)
	if i, ok := bitsEqual(got, want); !ok {
		t.Fatalf("float32-path FirstTouch changed results at %d", i)
	}
}

// TestStickyPoolCSR32TransposeGatherBitIdentical is the transpose-gather
// pinning test: with a strictly nonzero x (so the scatter's zero-skip and
// the gather's multiply-through agree on zero signs), the parallel gather
// over the cached transpose must reproduce the serial scatter exactly by
// representation, at several worker counts, sticky and plain.
func TestStickyPoolCSR32TransposeGatherBitIdentical(t *testing.T) {
	for trial := int64(0); trial < 3; trial++ {
		m := randBigCSR(2200, 1800, 18, 90+trial)
		if m.NNZ() < ParallelMinNNZ {
			t.Fatalf("fixture too small: nnz=%d", m.NNZ())
		}
		x := randVec(m.Rows(), 50+trial)
		for i := range x {
			if x[i] == 0 {
				x[i] = 0.5 // keep the scatter's zero-skip out of play
			}
		}
		want := make([]float64, m.Cols())
		Compact(m.Clone()).MulVecT(want, x) // serial scatter reference
		for _, workers := range []int{2, 8} {
			for _, sticky := range []bool{false, true} {
				var pool *par.Pool
				if sticky {
					pool = par.NewStickyPool(workers, false)
				} else {
					pool = par.NewPool(workers)
				}
				c := Compact(m.Clone()).SetPool(pool)
				c.CacheTranspose()
				if sticky {
					c.FirstTouch()
				}
				got := make([]float64, m.Cols())
				c.MulVecT(got, x)
				for j := range got {
					if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
						t.Fatalf("trial %d workers=%d sticky=%v: gather MulVecT[%d] = %v (bits %x), scatter %v (bits %x)",
							trial, workers, sticky, j, got[j], math.Float64bits(got[j]),
							want[j], math.Float64bits(want[j]))
					}
				}
				pool.Close()
			}
		}
	}
}
