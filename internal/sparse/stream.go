package sparse

import (
	"sync"
	"time"

	"bepi/internal/par"
)

// StreamBandwidth returns the machine's measured memory-bandwidth roof in
// bytes/second: a one-shot STREAM-triad-style probe (a[i] = b[i] + q·c[i]
// over three arrays far larger than cache, counting the canonical 24 bytes
// of traffic per element, best of several passes). The triad is chunked
// over the shared pool so the roof reflects all cores — the same budget the
// parallel SpMV kernels run under — which makes achieved/STREAM a fair
// fraction. The first call runs the probe (tens of milliseconds) and caches
// the result for the process lifetime.
func StreamBandwidth() float64 {
	streamOnce.Do(func() { streamBW = measureStream() })
	return streamBW
}

var (
	streamOnce sync.Once
	streamBW   float64
)

func measureStream() float64 {
	const (
		elems = 1 << 21 // three 16 MiB float64 arrays
		q     = 3.0
	)
	a := make([]float64, elems)
	b := make([]float64, elems)
	c := make([]float64, elems)
	for i := range b {
		b[i] = float64(i & 1023)
		c[i] = float64((i >> 3) & 511)
	}
	pool := par.Shared()
	triad := func() {
		pool.For(elems, func(_, lo, hi int) {
			aa, bb, cc := a[lo:hi], b[lo:hi], c[lo:hi]
			for i := range aa {
				aa[i] = bb[i] + q*cc[i]
			}
		})
	}
	triad() // fault in pages, warm the path
	best := time.Duration(1 << 62)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		triad()
		if el := time.Since(start); el < best {
			best = el
		}
	}
	if best <= 0 {
		return 0
	}
	return float64(elems*24) / best.Seconds()
}
