#include "textflag.h"

// func prefetchT0(p unsafe.Pointer)
TEXT ·prefetchT0(SB), NOSPLIT, $0-8
	MOVD p+0(FP), R0
	PRFM (R0), PLDL1KEEP
	RET
