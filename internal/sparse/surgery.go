package sparse

import (
	"fmt"
)

// Edit describes one entry-level change applied by WithEdits: set the entry
// at (Row, Col) to Val, or remove it when Delete is set. Delete is an
// explicit flag rather than a zero-value sentinel because the delta-rebuild
// path must be able to *store* an exact zero: Schur-complement columns keep
// explicit zeros from cancellation (see COO.ToCSR), and the ILU(0) pattern —
// hence bit-identity with a from-scratch build — depends on them.
type Edit struct {
	Row, Col int
	Val      float64
	Delete   bool
}

// WithEdits returns a new matrix equal to m with the edits applied: each
// edit overwrites (or inserts) the entry at its position, or removes it when
// Delete is set. Deleting a missing entry is a no-op. Edits may be given in
// any order; when several target the same position the last one wins. The
// receiver is not modified and shares no backing arrays with the result, so
// an engine serving queries from m is never perturbed — this is the
// copy-on-write primitive under the incremental rebuild path.
func (m *CSR) WithEdits(edits []Edit) *CSR {
	if len(edits) == 0 {
		return m.Clone()
	}
	for _, e := range edits {
		if e.Row < 0 || e.Row >= m.rows || e.Col < 0 || e.Col >= m.cols {
			panic(fmt.Sprintf("sparse: edit (%d,%d) out of range %dx%d", e.Row, e.Col, m.rows, m.cols))
		}
	}
	es := sortEdits(edits, m.rows, m.cols)
	// Last edit per position wins (sortEdits is stable, so among
	// duplicates the final input edit sorts last).
	out := 0
	for _, e := range es {
		if out > 0 && es[out-1].Row == e.Row && es[out-1].Col == e.Col {
			es[out-1] = e
			continue
		}
		es[out] = e
		out++
	}
	es = es[:out]

	rowPtr := make([]int, m.rows+1)
	col := make([]int, 0, m.NNZ()+len(es))
	val := make([]float64, 0, m.NNZ()+len(es))
	q := 0 // next unapplied edit
	for i := 0; i < m.rows; i++ {
		pa, ea := m.rowPtr[i], m.rowPtr[i+1]
		for pa < ea || (q < len(es) && es[q].Row == i) {
			switch {
			case q >= len(es) || es[q].Row != i || (pa < ea && m.col[pa] < es[q].Col):
				col = append(col, m.col[pa])
				val = append(val, m.val[pa])
				pa++
			case pa >= ea || es[q].Col < m.col[pa]:
				if !es[q].Delete {
					col = append(col, es[q].Col)
					val = append(val, es[q].Val)
				}
				q++
			default: // same position: the edit replaces (or removes) the entry
				if !es[q].Delete {
					col = append(col, es[q].Col)
					val = append(val, es[q].Val)
				}
				pa++
				q++
			}
		}
		rowPtr[i+1] = len(col)
	}
	return &CSR{rows: m.rows, cols: m.cols, rowPtr: rowPtr, col: col, val: val}
}

// sortEdits returns a copy of edits stably ordered by (Row, Col) via two
// counting passes (LSD radix: Col first, then Row). Delta rebuilds splice
// hundreds of thousands of edits per flush; the reflection-based
// sort.SliceStable this replaces dominated the incremental-rebuild profile.
// Callers have already validated 0 ≤ Row < rows and 0 ≤ Col < cols.
func sortEdits(edits []Edit, rows, cols int) []Edit {
	byCol := make([]Edit, len(edits))
	count := make([]int, maxIntPair(rows, cols)+1)
	for _, e := range edits {
		count[e.Col]++
	}
	sum := 0
	for c := 0; c < cols; c++ {
		count[c], sum = sum, sum+count[c]
	}
	for _, e := range edits {
		byCol[count[e.Col]] = e
		count[e.Col]++
	}
	out := make([]Edit, len(edits))
	clear(count[:cols])
	for _, e := range byCol {
		count[e.Row]++
	}
	sum = 0
	for r := 0; r < rows; r++ {
		count[r], sum = sum, sum+count[r]
	}
	for _, e := range byCol {
		out[count[e.Row]] = e
		count[e.Row]++
	}
	return out
}

func maxIntPair(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WithRowsAppended returns a new matrix with k empty rows appended below m.
// The receiver is unchanged and shares no backing arrays with the result.
// The delta path uses it to extend H31/H32 when a flush only grows the node
// count: new nodes are deadends, so their rows are identically zero.
func (m *CSR) WithRowsAppended(k int) *CSR {
	if k < 0 {
		panic(fmt.Sprintf("sparse: WithRowsAppended(%d)", k))
	}
	rowPtr := make([]int, m.rows+k+1)
	copy(rowPtr, m.rowPtr)
	for i := m.rows + 1; i <= m.rows+k; i++ {
		rowPtr[i] = rowPtr[m.rows]
	}
	col := make([]int, len(m.col))
	copy(col, m.col)
	val := make([]float64, len(m.val))
	copy(val, m.val)
	return &CSR{rows: m.rows + k, cols: m.cols, rowPtr: rowPtr, col: col, val: val}
}

// WithColsWidened returns a new matrix with the column count grown to cols
// (entries unchanged; the new columns are empty). It panics if cols is
// smaller than the current width. The delta path uses it to widen H12/H32
// column spaces — hub-side widths never change under a reused ordering, but
// node growth widens the deadend tail that H31/H32 rows index into.
func (m *CSR) WithColsWidened(cols int) *CSR {
	if cols < m.cols {
		panic(fmt.Sprintf("sparse: WithColsWidened(%d) below current %d", cols, m.cols))
	}
	out := m.Clone()
	out.cols = cols
	return out
}
