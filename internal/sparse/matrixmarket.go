package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MatrixMarket I/O: the de-facto interchange format for sparse matrices
// (and the format most public graph datasets ship in). Supported flavor:
// "%%MatrixMarket matrix coordinate real|integer|pattern general|symmetric".
// Symmetric inputs are expanded to full storage on read.

// ReadMatrixMarket parses a MatrixMarket coordinate stream into a CSR
// matrix.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("sparse: reading MatrixMarket header: %w", err)
		}
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("sparse: bad MatrixMarket banner %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported layout %q (only coordinate)", header[2])
	}
	field := header[3]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported field %q", field)
	}
	sym := header[4]
	switch sym {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", sym)
	}

	// Size line (after comments).
	var rows, cols, nnz int
	sized := false
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("sparse: line %d: bad size line %q", lineNo, line)
		}
		var err error
		if rows, err = strconv.Atoi(f[0]); err != nil {
			return nil, fmt.Errorf("sparse: line %d: %w", lineNo, err)
		}
		if cols, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("sparse: line %d: %w", lineNo, err)
		}
		if nnz, err = strconv.Atoi(f[2]); err != nil {
			return nil, fmt.Errorf("sparse: line %d: %w", lineNo, err)
		}
		sized = true
		break
	}
	if !sized {
		return nil, fmt.Errorf("sparse: MatrixMarket stream has no size line")
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: negative MatrixMarket sizes %d %d %d", rows, cols, nnz)
	}
	if sym == "symmetric" && rows != cols {
		return nil, fmt.Errorf("sparse: symmetric matrix must be square, got %dx%d", rows, cols)
	}

	coo := NewCOO(rows, cols)
	coo.Reserve(nnz)
	read := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("sparse: line %d: want %d fields, got %q", lineNo, want, line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: line %d: %w", lineNo, err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: line %d: %w", lineNo, err)
		}
		// MatrixMarket is 1-indexed.
		i--
		j--
		if i < 0 || i >= rows || j < 0 || j >= cols {
			return nil, fmt.Errorf("sparse: line %d: entry (%d,%d) out of %dx%d", lineNo, i+1, j+1, rows, cols)
		}
		v := 1.0
		if field != "pattern" {
			if v, err = strconv.ParseFloat(f[2], 64); err != nil {
				return nil, fmt.Errorf("sparse: line %d: %w", lineNo, err)
			}
		}
		coo.Add(i, j, v)
		if sym == "symmetric" && i != j {
			coo.Add(j, i, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sparse: scanning MatrixMarket: %w", err)
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: MatrixMarket declared %d entries, found %d", nnz, read)
	}
	m := coo.ToCSR()
	// Defense in depth on untrusted input: fail the load, not a later
	// kernel, if the built structure is ever malformed.
	if err := Validate(m.rows, m.cols, m.rowPtr, m.col); err != nil {
		return nil, fmt.Errorf("sparse: MatrixMarket produced invalid CSR: %w", err)
	}
	return m, nil
}

// WriteMatrixMarket writes the matrix as "coordinate real general".
func (m *CSR) WriteMatrixMarket(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.rows, m.cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.col[p]+1, m.val[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
