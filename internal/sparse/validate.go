package sparse

import "fmt"

// Validate checks the structural CSR invariants that NewCSR cannot repair:
// rowPtr has length rows+1, starts at 0, is non-decreasing, its last entry
// equals len(col), and every column index lies in [0, cols). Within-row
// ordering is not required (NewCSR sorts and merges). The check is O(nnz)
// and allocation-free. It returns nil for well-formed input.
func Validate(rows, cols int, rowPtr, col []int) error {
	if rows < 0 || cols < 0 {
		return fmt.Errorf("sparse: negative dimension %dx%d", rows, cols)
	}
	if len(rowPtr) != rows+1 {
		return fmt.Errorf("sparse: rowPtr length %d want %d", len(rowPtr), rows+1)
	}
	if rowPtr[0] != 0 {
		return fmt.Errorf("sparse: rowPtr[0] = %d want 0", rowPtr[0])
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i+1] < rowPtr[i] {
			return fmt.Errorf("sparse: rowPtr decreases at row %d: %d -> %d", i, rowPtr[i], rowPtr[i+1])
		}
	}
	if rowPtr[rows] != len(col) {
		return fmt.Errorf("sparse: rowPtr[%d] = %d want len(col) = %d", rows, rowPtr[rows], len(col))
	}
	for p, c := range col {
		if c < 0 || c >= cols {
			return fmt.Errorf("sparse: column index %d at position %d out of range [0,%d)", c, p, cols)
		}
	}
	return nil
}

// validateCompact is Validate for the compact index types used by CSR32.
// Unlike Validate it also requires strictly increasing columns within each
// row: CSR32 is immutable, so its constructors must be handed the final
// sorted, duplicate-free layout.
func validateCompact[P int32 | int64](rows, cols int, rowPtr []P, col []uint32) error {
	if rows < 0 || cols < 0 {
		return fmt.Errorf("sparse: negative dimension %dx%d", rows, cols)
	}
	if int64(cols) > maxIndex32 {
		return fmt.Errorf("sparse: cols %d exceeds uint32 index range", cols)
	}
	if len(rowPtr) != rows+1 {
		return fmt.Errorf("sparse: rowPtr length %d want %d", len(rowPtr), rows+1)
	}
	if rowPtr[0] != 0 {
		return fmt.Errorf("sparse: rowPtr[0] = %d want 0", rowPtr[0])
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i+1] < rowPtr[i] {
			return fmt.Errorf("sparse: rowPtr decreases at row %d: %d -> %d", i, rowPtr[i], rowPtr[i+1])
		}
	}
	if int64(rowPtr[rows]) != int64(len(col)) {
		return fmt.Errorf("sparse: rowPtr[%d] = %d want len(col) = %d", rows, rowPtr[rows], len(col))
	}
	for i := 0; i < rows; i++ {
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			c := col[p]
			if uint64(c) >= uint64(cols) {
				return fmt.Errorf("sparse: column index %d in row %d out of range [0,%d)", c, i, cols)
			}
			if p > rowPtr[i] && col[p-1] >= c {
				return fmt.Errorf("sparse: row %d columns not strictly increasing at position %d", i, p)
			}
		}
	}
	return nil
}
