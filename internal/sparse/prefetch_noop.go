//go:build !amd64 && !arm64

package sparse

import "unsafe"

// prefetchT0 is a no-op on architectures without a wired prefetch hint; the
// distance-D kernels then pay only the (predictable) guard branch.
func prefetchT0(p unsafe.Pointer) { _ = p }
