package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randCSR builds a random rows×cols matrix with the given fill density.
func randCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	coo := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

func denseMulVec(d [][]float64, x []float64) []float64 {
	out := make([]float64, len(d))
	for i, row := range d {
		for j, v := range row {
			out[i] += v * x[j]
		}
	}
	return out
}

func TestCOOToCSRSortsAndMerges(t *testing.T) {
	coo := NewCOO(3, 3)
	coo.Add(2, 1, 1.0)
	coo.Add(0, 2, 3.0)
	coo.Add(2, 1, 2.0) // duplicate, must merge to 3.0
	coo.Add(0, 0, 5.0)
	coo.Add(1, 1, -1.0)
	m := coo.ToCSR()
	if m.NNZ() != 4 {
		t.Fatalf("nnz = %d, want 4", m.NNZ())
	}
	if got := m.At(2, 1); got != 3.0 {
		t.Errorf("At(2,1) = %v, want 3", got)
	}
	if got := m.At(0, 0); got != 5.0 {
		t.Errorf("At(0,0) = %v, want 5", got)
	}
	if got := m.At(0, 1); got != 0 {
		t.Errorf("At(0,1) = %v, want 0", got)
	}
	// Check sortedness invariant.
	for i := 0; i < m.Rows(); i++ {
		s, e := m.RowRange(i)
		for p := s + 1; p < e; p++ {
			if m.ColIdx()[p] <= m.ColIdx()[p-1] {
				t.Fatalf("row %d not strictly sorted", i)
			}
		}
	}
}

func TestCOOAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}

func TestIdentityAndDiagonal(t *testing.T) {
	id := Identity(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	id.MulVec(y, x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity MulVec mismatch at %d", i)
		}
	}
	d := Diagonal([]float64{2, 3})
	if d.At(0, 0) != 2 || d.At(1, 1) != 3 || d.At(0, 1) != 0 {
		t.Fatal("Diagonal wrong")
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(30)
		m := randCSR(rng, rows, cols, 0.3)
		d := m.ToDense()
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, rows)
		m.MulVec(got, x)
		want := denseMulVec(d, x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d: MulVec[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMulVecTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(30)
		m := randCSR(rng, rows, cols, 0.3)
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, cols)
		m.MulVecT(got, x)
		want := make([]float64, cols)
		m.Transpose().MulVec(want, x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d: MulVecT[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		m := randCSR(rng, 1+rng.Intn(40), 1+rng.Intn(40), 0.2)
		tt := m.Transpose().Transpose()
		if !m.Equal(tt) {
			t.Fatalf("trial %d: transpose is not an involution", trial)
		}
	}
}

func TestAddSubScale(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randCSR(rng, 20, 15, 0.3)
	b := randCSR(rng, 20, 15, 0.3)
	sum := a.Add(b)
	diff := sum.Sub(b)
	if !diff.AlmostEqual(a, 1e-12) {
		t.Fatal("(a+b)-b != a")
	}
	zero := a.Sub(a)
	if zero.MaxAbs() != 0 {
		t.Fatal("a-a != 0")
	}
	scaled := a.Clone().Scale(2)
	if !scaled.AlmostEqual(a.Add(a), 1e-12) {
		t.Fatal("2a != a+a")
	}
}

func TestMulMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		m, k, n := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a := randCSR(rng, m, k, 0.3)
		b := randCSR(rng, k, n, 0.3)
		c := a.Mul(b)
		da, db, dc := a.ToDense(), b.ToDense(), c.ToDense()
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var want float64
				for t2 := 0; t2 < k; t2++ {
					want += da[i][t2] * db[t2][j]
				}
				if math.Abs(dc[i][j]-want) > 1e-10 {
					t.Fatalf("trial %d: C[%d][%d] = %v, want %v", trial, i, j, dc[i][j], want)
				}
			}
		}
	}
}

func TestPermuteSym(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(30)
		m := randCSR(rng, n, n, 0.3)
		perm := rng.Perm(n)
		p := m.PermuteSym(perm)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got, want := p.At(perm[i], perm[j]), m.At(i, j); got != want {
					t.Fatalf("trial %d: P[%d][%d] = %v, want %v", trial, perm[i], perm[j], got, want)
				}
			}
		}
		if p.NNZ() != m.NNZ() {
			t.Fatalf("permutation changed nnz: %d vs %d", p.NNZ(), m.NNZ())
		}
	}
}

func TestBlockExtraction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randCSR(rng, 30, 25, 0.3)
	r0, r1, c0, c1 := 5, 20, 3, 17
	b := m.Block(r0, r1, c0, c1)
	if b.Rows() != r1-r0 || b.Cols() != c1-c0 {
		t.Fatalf("block shape %dx%d", b.Rows(), b.Cols())
	}
	for i := r0; i < r1; i++ {
		for j := c0; j < c1; j++ {
			if got, want := b.At(i-r0, j-c0), m.At(i, j); got != want {
				t.Fatalf("block[%d][%d] = %v, want %v", i-r0, j-c0, got, want)
			}
		}
	}
	// Degenerate empty block.
	e := m.Block(4, 4, 0, 25)
	if e.Rows() != 0 || e.NNZ() != 0 {
		t.Fatal("empty block not empty")
	}
}

func TestRowNormalize(t *testing.T) {
	coo := NewCOO(3, 3)
	coo.Add(0, 0, 2)
	coo.Add(0, 1, 2)
	coo.Add(2, 2, 5)
	// Row 1 is empty (deadend-like) and must stay empty.
	m := coo.ToCSR().RowNormalize()
	sums := m.RowSums()
	if math.Abs(sums[0]-1) > 1e-15 || sums[1] != 0 || math.Abs(sums[2]-1) > 1e-15 {
		t.Fatalf("row sums after normalize: %v", sums)
	}
}

func TestDropZeros(t *testing.T) {
	coo := NewCOO(2, 3)
	coo.Add(0, 0, 1e-14)
	coo.Add(0, 2, 1)
	coo.Add(1, 1, -2)
	m := coo.ToCSR().DropZeros(1e-12)
	if m.NNZ() != 2 {
		t.Fatalf("nnz after drop = %d, want 2", m.NNZ())
	}
	if m.At(0, 0) != 0 || m.At(0, 2) != 1 || m.At(1, 1) != -2 {
		t.Fatal("DropZeros removed wrong entries")
	}
}

func TestAddMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := randCSR(rng, 12, 9, 0.4)
	x := make([]float64, 9)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, 12)
	for i := range dst {
		dst[i] = float64(i)
	}
	want := make([]float64, 12)
	copy(want, dst)
	mx := make([]float64, 12)
	m.MulVec(mx, x)
	for i := range want {
		want[i] += 2.5 * mx[i]
	}
	m.AddMulVec(dst, 2.5, x)
	for i := range dst {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("AddMulVec[%d] = %v want %v", i, dst[i], want[i])
		}
	}
}

func TestRowSums(t *testing.T) {
	m := FromDense([][]float64{{1, 2, 0}, {0, 0, 0}, {-1, 0, 4}})
	s := m.RowSums()
	if s[0] != 3 || s[1] != 0 || s[2] != 3 {
		t.Fatalf("RowSums = %v", s)
	}
}

func TestReserveAndNNZ(t *testing.T) {
	coo := NewCOO(3, 3)
	coo.Reserve(10)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 1)
	if coo.NNZ() != 2 || coo.Rows() != 3 || coo.Cols() != 3 {
		t.Fatal("COO accounting wrong")
	}
	coo.Reserve(4) // shrinking request is a no-op
	if coo.NNZ() != 2 {
		t.Fatal("Reserve lost entries")
	}
}

func TestDiagAndNorms(t *testing.T) {
	m := FromDense([][]float64{{3, 0, -4}, {0, 5, 0}, {1, 0, 2}})
	d := m.Diag()
	if d[0] != 3 || d[1] != 5 || d[2] != 2 {
		t.Fatalf("Diag = %v", d)
	}
	if m.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	want := math.Sqrt(9 + 16 + 25 + 1 + 4)
	if math.Abs(m.FrobeniusNorm()-want) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v, want %v", m.FrobeniusNorm(), want)
	}
}

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randCSR(rng, 17, 23, 0.25)
	back := FromDense(m.ToDense())
	if !m.Equal(back) {
		t.Fatal("dense round trip lost information")
	}
}

func TestMemoryBytes(t *testing.T) {
	m := Identity(10)
	want := int64(10*16 + 11*8)
	if m.MemoryBytes() != want {
		t.Fatalf("MemoryBytes = %d, want %d", m.MemoryBytes(), want)
	}
}

// Property: for random matrices and vectors, (AB)x == A(Bx).
func TestQuickMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a := randCSR(r, m, k, 0.4)
		b := randCSR(r, k, n, 0.4)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		bx := make([]float64, k)
		b.MulVec(bx, x)
		abx := make([]float64, m)
		a.MulVec(abx, bx)
		ab := a.Mul(b)
		got := make([]float64, m)
		ab.MulVec(got, x)
		for i := range got {
			if math.Abs(got[i]-abx[i]) > 1e-9*(1+math.Abs(abx[i])) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: PermuteSym with a random permutation preserves MulVec up to
// permutation of the coordinates.
func TestQuickPermutePreservesAction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(15)
		a := randCSR(r, n, n, 0.4)
		perm := r.Perm(n)
		p := a.PermuteSym(perm)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		// y = A x, then permuted: y'[perm[i]] should equal (P A Pᵀ)(x')[perm[i]]
		// where x'[perm[i]] = x[i].
		xp := make([]float64, n)
		for i := range x {
			xp[perm[i]] = x[i]
		}
		y := make([]float64, n)
		a.MulVec(y, x)
		yp := make([]float64, n)
		p.MulVec(yp, xp)
		for i := range y {
			if math.Abs(yp[perm[i]]-y[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose distributes over addition.
func TestQuickTransposeAdd(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(12), 1+r.Intn(12)
		a := randCSR(r, rows, cols, 0.4)
		b := randCSR(r, rows, cols, 0.4)
		lhs := a.Add(b).Transpose()
		rhs := a.Transpose().Add(b.Transpose())
		return lhs.AlmostEqual(rhs, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSpMV(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	m := randCSR(rng, 2000, 2000, 0.005)
	x := make([]float64, 2000)
	for i := range x {
		x[i] = rng.Float64()
	}
	y := make([]float64, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(y, x)
	}
}

func BenchmarkSpMSpM(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	m := randCSR(rng, 500, 500, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Mul(m)
	}
}
