// Package sparse implements the sparse-matrix substrate used throughout the
// BePI reproduction: a COO triplet builder, an immutable-shape CSR matrix
// with the kernels the solvers need (SpMV, transpose, sparse-sparse multiply,
// symmetric permutation, contiguous block extraction, row normalization),
// and helpers to bridge to dense matrices for tests and small exact solves.
//
// All matrices store float64 values. Column indices within each row are kept
// sorted and duplicate-free; every constructor establishes that invariant and
// every operation preserves it.
package sparse

import (
	"fmt"
	"math"
	"sort"

	"bepi/internal/par"
)

// COO is a coordinate-format triplet accumulator used to build CSR matrices.
// Duplicate entries are allowed and are summed during conversion.
type COO struct {
	rows, cols int
	r, c       []int
	v          []float64
}

// NewCOO returns an empty COO accumulator with the given shape.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimension %dx%d", rows, cols))
	}
	return &COO{rows: rows, cols: cols}
}

// Rows returns the number of rows.
func (a *COO) Rows() int { return a.rows }

// Cols returns the number of columns.
func (a *COO) Cols() int { return a.cols }

// NNZ returns the number of accumulated entries (duplicates included).
func (a *COO) NNZ() int { return len(a.v) }

// Reserve grows internal capacity to hold at least n entries.
func (a *COO) Reserve(n int) {
	if cap(a.v) >= n {
		return
	}
	r := make([]int, len(a.r), n)
	copy(r, a.r)
	c := make([]int, len(a.c), n)
	copy(c, a.c)
	v := make([]float64, len(a.v), n)
	copy(v, a.v)
	a.r, a.c, a.v = r, c, v
}

// Add accumulates value v at position (i, j).
func (a *COO) Add(i, j int, v float64) {
	if i < 0 || i >= a.rows || j < 0 || j >= a.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %dx%d", i, j, a.rows, a.cols))
	}
	a.r = append(a.r, i)
	a.c = append(a.c, j)
	a.v = append(a.v, v)
}

// Append concatenates all entries of b, which must have the same shape,
// onto a. It is how per-worker COO shards built by a parallel kernel merge
// back into one accumulator.
func (a *COO) Append(b *COO) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("sparse: Append shape %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	a.r = append(a.r, b.r...)
	a.c = append(a.c, b.c...)
	a.v = append(a.v, b.v...)
}

// ToCSR converts the accumulated triplets into a CSR matrix, summing
// duplicates and dropping entries whose merged value is exactly zero is NOT
// done (explicit zeros are kept so patterns remain predictable).
func (a *COO) ToCSR() *CSR {
	n := len(a.v)
	// Count entries per row.
	rowPtr := make([]int, a.rows+1)
	for _, i := range a.r {
		rowPtr[i+1]++
	}
	for i := 0; i < a.rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	col := make([]int, n)
	val := make([]float64, n)
	next := make([]int, a.rows)
	copy(next, rowPtr[:a.rows])
	for k := 0; k < n; k++ {
		i := a.r[k]
		p := next[i]
		col[p] = a.c[k]
		val[p] = a.v[k]
		next[i]++
	}
	m := &CSR{rows: a.rows, cols: a.cols, rowPtr: rowPtr, col: col, val: val}
	m.sortRowsAndMerge()
	return m
}

// CSR is a compressed sparse row matrix. Column indices within each row are
// sorted in strictly increasing order.
type CSR struct {
	rows, cols int
	rowPtr     []int
	col        []int
	val        []float64

	// pool, when set, parallelizes the matvec kernels above
	// ParallelMinNNZ by row partition; see SetPool.
	pool *par.Pool
	// tr is the cached transpose built by CacheTranspose; MulVecT runs as
	// a (parallelizable) row-gather over it when present.
	tr *CSR
	// bounds is the row partition cached by FirstTouch for the attached
	// pool, so the apply kernels stop recomputing (and reallocating) it per
	// call and sticky pools see the same chunk→worker map every apply.
	// SetPool invalidates it. nil means compute per call.
	bounds []int
}

// ParallelMinNNZ is the stored-entry count below which the matvec kernels
// stay serial even with a pool attached: under it, chunk handoff costs more
// than the multiply.
const ParallelMinNNZ = 1 << 15

// SetPool attaches a parallel pool to the matrix and returns it. With a
// pool attached (and more than one worker), MulVec, MulVecT, AddMulVec and
// MulVecBatch partition rows across the pool once the matrix has at least
// ParallelMinNNZ stored entries. Each output element is still produced by
// the unchanged serial per-row loop, so results are bit-identical to the
// serial kernels at any worker count. A nil pool restores serial execution.
func (m *CSR) SetPool(p *par.Pool) *CSR {
	m.pool = p
	m.bounds = nil
	if m.tr != nil {
		m.tr.SetPool(p)
	}
	return m
}

// FirstTouch pins the matrix's parallel layout to the attached pool: it
// caches the nnz-balanced row partition so the apply kernels stop
// recomputing it on every call, and — when the pool is sticky — rewrites
// each partition's col/val segment from the worker that owns the chunk, so
// the backing pages are first-touched (hence, under first-touch NUMA
// policy, placed) local to the worker that will stream them on every
// future apply. Contents are identical afterwards; only page placement and
// partition caching change, so results are unaffected. Call after SetPool
// (which invalidates the cached partition); matrices below the parallel
// threshold are left untouched. Returns m.
func (m *CSR) FirstTouch() *CSR {
	m.bounds = nil
	if bounds, ok := m.parBounds(); ok {
		if m.pool.Sticky() {
			col := make([]int, len(m.col))
			val := make([]float64, len(m.val))
			m.pool.ForBounds(bounds, func(_, lo, hi int) {
				s, e := m.rowPtr[lo], m.rowPtr[hi]
				copy(col[s:e], m.col[s:e])
				copy(val[s:e], m.val[s:e])
			})
			m.col, m.val = col, val
		}
		m.bounds = bounds
	}
	if m.tr != nil {
		m.tr.FirstTouch()
	}
	return m
}

// Pool returns the attached pool (nil means serial).
func (m *CSR) Pool() *par.Pool { return m.pool }

// CacheTranspose builds, caches and returns Mᵀ. While cached, MulVecT runs
// as a row-gather over the transpose — the same additions in the same
// order as the scatter loop, so results stay bit-identical — which, unlike
// the scatter, can be row-partitioned across the pool. Call it once the
// pattern and values are final; mutating the matrix afterwards desyncs the
// cache.
func (m *CSR) CacheTranspose() *CSR {
	if m.tr == nil {
		m.tr = m.Transpose()
		m.tr.pool = m.pool
	}
	return m.tr
}

// parBounds reports whether the kernels should run parallel, and with
// which row partition: nnz-balanced chunk boundaries over the pool's
// workers.
func (m *CSR) parBounds() ([]int, bool) {
	if m.pool.Workers() <= 1 || len(m.val) < ParallelMinNNZ || m.rows < 2 {
		return nil, false
	}
	if m.bounds != nil {
		return m.bounds, true
	}
	return par.BoundsByPrefix(m.rowPtr, m.pool.Workers()), true
}

// batchParBounds is parBounds with the threshold scaled by the batch width:
// a K-RHS batch does K times the work per stored entry, so chunk handoff
// amortizes at 1/K of the nnz. The partition itself is unchanged — results
// stay bit-identical either way; only the serial/parallel cutover moves.
func (m *CSR) batchParBounds(width int) ([]int, bool) {
	if width < 1 {
		width = 1
	}
	if m.pool.Workers() <= 1 || len(m.val)*width < ParallelMinNNZ || m.rows < 2 {
		return nil, false
	}
	if m.bounds != nil {
		return m.bounds, true
	}
	return par.BoundsByPrefix(m.rowPtr, m.pool.Workers()), true
}

// NewCSR constructs a CSR matrix directly from raw slices. The slices are
// used as-is (not copied); rows are sorted and duplicates merged if needed.
// The input must pass Validate (monotone row pointers, in-range columns);
// malformed input panics rather than producing a matrix whose kernels read
// out of bounds.
func NewCSR(rows, cols int, rowPtr, col []int, val []float64) *CSR {
	if len(col) != len(val) {
		panic(fmt.Sprintf("sparse: col/val length %d/%d", len(col), len(val)))
	}
	if err := Validate(rows, cols, rowPtr, col); err != nil {
		panic(err)
	}
	m := &CSR{rows: rows, cols: cols, rowPtr: rowPtr, col: col, val: val}
	m.sortRowsAndMerge()
	return m
}

// Zero returns an empty rows×cols matrix.
func Zero(rows, cols int) *CSR {
	return &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSR {
	rowPtr := make([]int, n+1)
	col := make([]int, n)
	val := make([]float64, n)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = i + 1
		col[i] = i
		val[i] = 1
	}
	return &CSR{rows: n, cols: n, rowPtr: rowPtr, col: col, val: val}
}

// Diagonal returns a square matrix with d on the diagonal.
func Diagonal(d []float64) *CSR {
	n := len(d)
	m := Identity(n)
	copy(m.val, d)
	return m
}

func (m *CSR) sortRowsAndMerge() {
	needSort := false
	for i := 0; i < m.rows && !needSort; i++ {
		for p := m.rowPtr[i] + 1; p < m.rowPtr[i+1]; p++ {
			if m.col[p] <= m.col[p-1] {
				needSort = true
				break
			}
		}
	}
	if !needSort {
		return
	}
	// Sort each row by column, then merge duplicates in place.
	type ent struct {
		c int
		v float64
	}
	out := 0
	newPtr := make([]int, m.rows+1)
	var buf []ent
	for i := 0; i < m.rows; i++ {
		start, end := m.rowPtr[i], m.rowPtr[i+1]
		buf = buf[:0]
		for p := start; p < end; p++ {
			buf = append(buf, ent{m.col[p], m.val[p]})
		}
		sort.Slice(buf, func(a, b int) bool { return buf[a].c < buf[b].c })
		rowStart := out
		for _, e := range buf {
			if out > rowStart && m.col[out-1] == e.c {
				m.val[out-1] += e.v
			} else {
				m.col[out] = e.c
				m.val[out] = e.v
				out++
			}
		}
		newPtr[i+1] = out
	}
	m.rowPtr = newPtr
	m.col = m.col[:out]
	m.val = m.val[:out]
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.val) }

// RowRange returns the half-open index range [start, end) into ColIdx/Values
// for row i.
func (m *CSR) RowRange(i int) (start, end int) { return m.rowPtr[i], m.rowPtr[i+1] }

// ColIdx exposes the column-index array (shared, do not mutate ordering).
func (m *CSR) ColIdx() []int { return m.col }

// Values exposes the value array (shared; mutating values is allowed as long
// as the pattern is unchanged).
func (m *CSR) Values() []float64 { return m.val }

// RowPtr exposes the row-pointer array (shared, read-only).
func (m *CSR) RowPtr() []int { return m.rowPtr }

// At returns the value at (i, j), or 0 if no entry is stored there.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
	start, end := m.rowPtr[i], m.rowPtr[i+1]
	row := m.col[start:end]
	p := sort.SearchInts(row, j)
	if p < len(row) && row[p] == j {
		return m.val[start+p]
	}
	return 0
}

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	rp := make([]int, len(m.rowPtr))
	copy(rp, m.rowPtr)
	c := make([]int, len(m.col))
	copy(c, m.col)
	v := make([]float64, len(m.val))
	copy(v, m.val)
	return &CSR{rows: m.rows, cols: m.cols, rowPtr: rp, col: c, val: v}
}

// MulVec computes dst = M·x. dst must have length Rows and x length Cols;
// dst and x must not alias. With a pool attached (SetPool) the rows are
// partitioned across workers; each dst element is still accumulated by the
// same serial loop, so the result is bit-identical to serial execution.
func (m *CSR) MulVec(dst, x []float64) {
	if len(dst) != m.rows || len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec dims dst=%d x=%d want %d,%d", len(dst), len(x), m.rows, m.cols))
	}
	if bounds, ok := m.parBounds(); ok {
		m.pool.ForBounds(bounds, func(_, lo, hi int) { m.mulVecRange(dst, x, lo, hi) })
		return
	}
	m.mulVecRange(dst, x, 0, m.rows)
}

// mulVecRange is the gather loop behind MulVec and AddMulVec; the shared
// four-lane kernel (kernels.go) does the accumulation, so CSR and CSR32
// run the exact same sequence — which is what keeps the two layouts
// bit-identical — with the process-wide prefetch distance applied.
func (m *CSR) mulVecRange(dst, x []float64, lo, hi int) {
	d := PrefetchDistance()
	for i := lo; i < hi; i++ {
		start, end := m.rowPtr[i], m.rowPtr[i+1]
		dst[i] = gatherRow4(m.col[start:end], m.val[start:end], x, d)
	}
}

// mulVecRangeSeq is the strictly sequential per-row gather. MulVecT's
// cached-transpose path uses it instead of the unrolled kernel: the
// scatter loop applies each output element's contributions one at a time
// in ascending row order, and only the sequential gather reproduces that
// addition order bit for bit.
func (m *CSR) mulVecRangeSeq(dst, x []float64, lo, hi int) {
	d := PrefetchDistance()
	for i := lo; i < hi; i++ {
		start, end := m.rowPtr[i], m.rowPtr[i+1]
		dst[i] = gatherRowSeq(m.col[start:end], m.val[start:end], x, d)
	}
}

// MulVecBatch computes dst[k] = M·x[k] for every right-hand side in the
// batch, traversing the matrix row by row so that each row's indices and
// values are read once from memory and reused across all K vectors. For the
// memory-bound SpMV this amortizes the matrix traffic over the batch, which
// is what makes multi-seed query batching pay off. Groups of four RHS run
// through the RHS-interleaved kernel — each loaded index and value feeds
// four independent accumulation chains, hiding gather latency behind work —
// while each RHS's per-row accumulation order is unchanged, so every output
// vector is bit-identical to MulVec on the same input. dst and x must hold
// equally many vectors with the same per-vector dimension rules as MulVec.
func (m *CSR) MulVecBatch(dst, x [][]float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("sparse: MulVecBatch got %d dst vectors for %d rhs", len(dst), len(x)))
	}
	for k := range x {
		if len(dst[k]) != m.rows || len(x[k]) != m.cols {
			panic(fmt.Sprintf("sparse: MulVecBatch dims dst=%d x=%d want %d,%d",
				len(dst[k]), len(x[k]), m.rows, m.cols))
		}
	}
	if bounds, ok := m.batchParBounds(len(x)); ok {
		m.pool.ForBounds(bounds, func(_, lo, hi int) { m.mulVecBatchRange(dst, x, lo, hi) })
		return
	}
	m.mulVecBatchRange(dst, x, 0, m.rows)
}

func (m *CSR) mulVecBatchRange(dst, x [][]float64, rlo, rhi int) {
	mulVecBatchRows(m.rowPtr, m.col, m.val, dst, x, rlo, rhi)
}

// MulVecT computes dst = Mᵀ·x. dst must have length Cols and x length
// Rows; they must not alias. Without a cached transpose it is the serial
// scatter loop; after CacheTranspose it becomes a gather over Mᵀ's rows —
// for each output j the contributions arrive in the same ascending-i order
// the scatter applies them, so the result is bit-identical — and the
// gather row-partitions across the pool like MulVec.
func (m *CSR) MulVecT(dst, x []float64) {
	if len(dst) != m.cols || len(x) != m.rows {
		panic(fmt.Sprintf("sparse: MulVecT dims dst=%d x=%d want %d,%d", len(dst), len(x), m.cols, m.rows))
	}
	if m.tr != nil {
		tr := m.tr
		if bounds, ok := tr.parBounds(); ok {
			tr.pool.ForBounds(bounds, func(_, lo, hi int) { tr.mulVecRangeSeq(dst, x, lo, hi) })
			return
		}
		tr.mulVecRangeSeq(dst, x, 0, tr.rows)
		return
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			dst[m.col[p]] += m.val[p] * xi
		}
	}
}

// AddMulVec computes dst += alpha · M·x. Row-partitioned like MulVec when
// a pool is attached.
func (m *CSR) AddMulVec(dst []float64, alpha float64, x []float64) {
	if len(dst) != m.rows || len(x) != m.cols {
		panic("sparse: AddMulVec dimension mismatch")
	}
	if bounds, ok := m.parBounds(); ok {
		m.pool.ForBounds(bounds, func(_, lo, hi int) { m.addMulVecRange(dst, alpha, x, lo, hi) })
		return
	}
	m.addMulVecRange(dst, alpha, x, 0, m.rows)
}

func (m *CSR) addMulVecRange(dst []float64, alpha float64, x []float64, lo, hi int) {
	d := PrefetchDistance()
	for i := lo; i < hi; i++ {
		start, end := m.rowPtr[i], m.rowPtr[i+1]
		dst[i] += alpha * gatherRow4(m.col[start:end], m.val[start:end], x, d)
	}
}

// Transpose returns Mᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	nnz := m.NNZ()
	rowPtr := make([]int, m.cols+1)
	for _, j := range m.col {
		rowPtr[j+1]++
	}
	for j := 0; j < m.cols; j++ {
		rowPtr[j+1] += rowPtr[j]
	}
	col := make([]int, nnz)
	val := make([]float64, nnz)
	next := make([]int, m.cols)
	copy(next, rowPtr[:m.cols])
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			j := m.col[p]
			q := next[j]
			col[q] = i
			val[q] = m.val[p]
			next[j]++
		}
	}
	// Traversal by increasing row i keeps each output row sorted.
	return &CSR{rows: m.cols, cols: m.rows, rowPtr: rowPtr, col: col, val: val}
}

// Scale multiplies all stored values by alpha in place and returns m.
func (m *CSR) Scale(alpha float64) *CSR {
	for i := range m.val {
		m.val[i] *= alpha
	}
	return m
}

// Add returns M + B as a new matrix. Shapes must match.
func (m *CSR) Add(b *CSR) *CSR { return m.AddScaled(b, 1) }

// Sub returns M − B as a new matrix. Shapes must match.
func (m *CSR) Sub(b *CSR) *CSR { return m.AddScaled(b, -1) }

// AddScaled returns M + alpha·B as a new matrix. Shapes must match.
func (m *CSR) AddScaled(b *CSR, alpha float64) *CSR {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("sparse: AddScaled shape %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	rowPtr := make([]int, m.rows+1)
	col := make([]int, 0, m.NNZ()+b.NNZ())
	val := make([]float64, 0, m.NNZ()+b.NNZ())
	for i := 0; i < m.rows; i++ {
		pa, ea := m.rowPtr[i], m.rowPtr[i+1]
		pb, eb := b.rowPtr[i], b.rowPtr[i+1]
		for pa < ea || pb < eb {
			switch {
			case pb >= eb || (pa < ea && m.col[pa] < b.col[pb]):
				col = append(col, m.col[pa])
				val = append(val, m.val[pa])
				pa++
			case pa >= ea || b.col[pb] < m.col[pa]:
				col = append(col, b.col[pb])
				val = append(val, alpha*b.val[pb])
				pb++
			default:
				col = append(col, m.col[pa])
				val = append(val, m.val[pa]+alpha*b.val[pb])
				pa++
				pb++
			}
		}
		rowPtr[i+1] = len(col)
	}
	return &CSR{rows: m.rows, cols: m.cols, rowPtr: rowPtr, col: col, val: val}
}

// Mul returns M·B as a new matrix using Gustavson's row-by-row algorithm.
func (m *CSR) Mul(b *CSR) *CSR {
	if m.cols != b.rows {
		panic(fmt.Sprintf("sparse: Mul inner dims %d vs %d", m.cols, b.rows))
	}
	rowPtr := make([]int, m.rows+1)
	var col []int
	var val []float64
	acc := make([]float64, b.cols)
	mark := make([]int, b.cols)
	for i := range mark {
		mark[i] = -1
	}
	rowCols := make([]int, 0, 64)
	for i := 0; i < m.rows; i++ {
		rowCols = rowCols[:0]
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			t := m.col[p]
			a := m.val[p]
			for q := b.rowPtr[t]; q < b.rowPtr[t+1]; q++ {
				j := b.col[q]
				if mark[j] != i {
					mark[j] = i
					acc[j] = 0
					rowCols = append(rowCols, j)
				}
				acc[j] += a * b.val[q]
			}
		}
		sort.Ints(rowCols)
		for _, j := range rowCols {
			col = append(col, j)
			val = append(val, acc[j])
		}
		rowPtr[i+1] = len(col)
	}
	return &CSR{rows: m.rows, cols: b.cols, rowPtr: rowPtr, col: col, val: val}
}

// DropZeros removes stored entries with |v| <= tol and returns m.
func (m *CSR) DropZeros(tol float64) *CSR {
	out := 0
	newPtr := make([]int, m.rows+1)
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			if math.Abs(m.val[p]) > tol {
				m.col[out] = m.col[p]
				m.val[out] = m.val[p]
				out++
			}
		}
		newPtr[i+1] = out
	}
	m.rowPtr = newPtr
	m.col = m.col[:out]
	m.val = m.val[:out]
	return m
}

// PermuteSym returns P·M·Pᵀ where the permutation maps old index i to new
// index perm[i]; i.e. result[perm[i], perm[j]] = M[i, j]. M must be square
// and perm a bijection on [0, n).
func (m *CSR) PermuteSym(perm []int) *CSR {
	if m.rows != m.cols {
		panic("sparse: PermuteSym requires a square matrix")
	}
	if len(perm) != m.rows {
		panic(fmt.Sprintf("sparse: perm length %d want %d", len(perm), m.rows))
	}
	n := m.rows
	nnz := m.NNZ()
	rowPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		rowPtr[perm[i]+1] = m.rowPtr[i+1] - m.rowPtr[i]
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	col := make([]int, nnz)
	val := make([]float64, nnz)
	for i := 0; i < n; i++ {
		q := rowPtr[perm[i]]
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			col[q] = perm[m.col[p]]
			val[q] = m.val[p]
			q++
		}
	}
	out := &CSR{rows: n, cols: n, rowPtr: rowPtr, col: col, val: val}
	out.sortRowsAndMerge()
	return out
}

// Block returns the dense-index submatrix M[r0:r1, c0:c1] as a new CSR
// matrix of shape (r1−r0)×(c1−c0). Intended for extracting the contiguous
// partitions H11, H12, ... after node reordering.
func (m *CSR) Block(r0, r1, c0, c1 int) *CSR {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("sparse: Block [%d:%d,%d:%d] out of range %dx%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	rows := r1 - r0
	rowPtr := make([]int, rows+1)
	var col []int
	var val []float64
	for i := r0; i < r1; i++ {
		start, end := m.rowPtr[i], m.rowPtr[i+1]
		// Binary search the first column >= c0.
		lo := start + sort.SearchInts(m.col[start:end], c0)
		for p := lo; p < end && m.col[p] < c1; p++ {
			col = append(col, m.col[p]-c0)
			val = append(val, m.val[p])
		}
		rowPtr[i-r0+1] = len(col)
	}
	return &CSR{rows: rows, cols: c1 - c0, rowPtr: rowPtr, col: col, val: val}
}

// RowSums returns the vector of row sums.
func (m *CSR) RowSums() []float64 {
	s := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			s[i] += m.val[p]
		}
	}
	return s
}

// RowNormalize divides each nonempty row by its sum in place and returns m.
// Rows whose sum is zero are left untouched (deadend rows).
func (m *CSR) RowNormalize() *CSR {
	for i := 0; i < m.rows; i++ {
		var s float64
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			s += m.val[p]
		}
		if s == 0 {
			continue
		}
		inv := 1 / s
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			m.val[p] *= inv
		}
	}
	return m
}

// Diag returns the diagonal as a dense vector (square matrices only).
func (m *CSR) Diag() []float64 {
	if m.rows != m.cols {
		panic("sparse: Diag requires a square matrix")
	}
	d := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// MaxAbs returns the largest absolute stored value (0 for empty matrices).
func (m *CSR) MaxAbs() float64 {
	var mx float64
	for _, v := range m.val {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns sqrt(sum of squared entries).
func (m *CSR) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.val {
		s += v * v
	}
	return math.Sqrt(s)
}

// MemoryBytes reports the storage footprint of the matrix: 8 bytes per
// value, 8 per column index, 8 per row pointer. This is the quantity the
// paper reports as "memory space for preprocessed data".
func (m *CSR) MemoryBytes() int64 {
	return int64(len(m.val))*16 + int64(len(m.rowPtr))*8
}

// Equal reports whether the two matrices have identical shape, pattern and
// values.
func (m *CSR) Equal(b *CSR) bool {
	if m.rows != b.rows || m.cols != b.cols || m.NNZ() != b.NNZ() {
		return false
	}
	for i := range m.rowPtr {
		if m.rowPtr[i] != b.rowPtr[i] {
			return false
		}
	}
	for p := range m.col {
		if m.col[p] != b.col[p] || m.val[p] != b.val[p] {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether the matrices agree entrywise within tol,
// treating missing entries as zero.
func (m *CSR) AlmostEqual(b *CSR, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	d := m.Sub(b)
	return d.MaxAbs() <= tol
}

// String returns a short shape/nnz description.
func (m *CSR) String() string {
	return fmt.Sprintf("CSR{%dx%d, nnz=%d}", m.rows, m.cols, m.NNZ())
}
