package sparse

import (
	"sync"
	"sync/atomic"
	"time"
)

// Software prefetch for the gather kernels. The SpMV inner loop is a random
// gather x[col[p]]: the column stream is sequential (the hardware prefetcher
// covers it) but the gather targets are not, so on matrices whose x vector
// spills the cache each load is a demand miss the core must stall on. A
// distance-D software prefetch touches the line for x[col[p+D]] while the
// multiply at p is still in flight, overlapping D iterations of useful work
// with each miss. The right D depends on the machine (miss latency ÷ loop
// cycle time), so it is a runtime knob with a micro-probe auto-tuner rather
// than a compile-time constant; distance 0 disables prefetch and leaves the
// original loops untouched.

// maxPrefetchDistance bounds the knob; beyond this the prefetched line is
// routinely evicted again before use.
const maxPrefetchDistance = 64

var (
	prefetchDist   atomic.Int32
	prefetchChosen atomic.Bool
	autoTuneOnce   sync.Once
)

// SetPrefetchDistance fixes the gather prefetch lookahead to d entries
// (clamped to [0, 64]; 0 disables prefetch). An explicit setting wins over
// auto-tuning: AutoTunePrefetch becomes a no-op afterwards. Safe to call
// concurrently with running kernels — they read the knob atomically per
// invocation and the hint never changes results.
func SetPrefetchDistance(d int) {
	if d < 0 {
		d = 0
	}
	if d > maxPrefetchDistance {
		d = maxPrefetchDistance
	}
	prefetchChosen.Store(true)
	prefetchDist.Store(int32(d))
}

// PrefetchDistance returns the current gather prefetch lookahead (0 = off).
func PrefetchDistance() int { return int(prefetchDist.Load()) }

// AutoTunePrefetch calibrates the prefetch distance by timing a synthetic
// cache-spilling random-gather SpMV at candidate distances and keeping the
// fastest, with hysteresis: prefetch costs a call per stride-4 step, so it
// stays off unless a candidate beats the plain kernel by a clear margin.
// The probe runs once per process (~tens of milliseconds) on first call —
// engine warmup triggers it — and is skipped entirely if
// SetPrefetchDistance was called first. Returns the distance in effect.
func AutoTunePrefetch() int {
	autoTuneOnce.Do(func() {
		if prefetchChosen.Load() {
			return
		}
		prefetchDist.Store(int32(tunePrefetch()))
		prefetchChosen.Store(true)
	})
	return PrefetchDistance()
}

// resetPrefetchForTest restores the untuned default so tests and benchmarks
// that sweep the knob do not leak state into each other. Not for production
// use: it deliberately re-arms nothing (the auto-tune once-guard stays
// spent).
func resetPrefetchForTest() {
	prefetchDist.Store(0)
	prefetchChosen.Store(false)
}

// tunePrefetch times MulVec over a synthetic matrix shaped like the worst
// case the kernels face: modest rows, long rows of pseudo-random columns
// into an x vector far larger than L2, so every gather is a likely miss.
func tunePrefetch() int {
	const (
		rows   = 1 << 13
		perRow = 32
		n      = 1 << 20 // 8 MiB x vector
	)
	rowPtr := make([]int, rows+1)
	for i := 1; i <= rows; i++ {
		rowPtr[i] = i * perRow
	}
	col := make([]int, rows*perRow)
	val := make([]float64, len(col))
	seed := uint64(0x9e3779b97f4a7c15)
	for i := range col {
		seed = seed*6364136223846793005 + 1442695040888963407
		col[i] = int(seed>>33) & (n - 1)
		val[i] = 1 + float64(i&7)
	}
	// The gather kernels need in-range indices only, not sorted rows, so the
	// probe builds the struct directly rather than paying NewCSR's repair.
	m := &CSR{rows: rows, cols: n, rowPtr: rowPtr, col: col, val: val}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%97) * 0.125
	}
	dst := make([]float64, rows)
	m.MulVec(dst, x) // fault in pages, warm the instruction path

	saved := prefetchDist.Load()
	defer prefetchDist.Store(saved)
	// Round-robin the repetitions across candidates rather than timing each
	// candidate in a block: on a machine whose effective speed drifts (shared
	// vCPUs, thermal throttling), block timing hands whichever candidate runs
	// during a fast phase a spurious win, while interleaved rounds expose
	// every candidate to the same drift. Keep each candidate's best round.
	candidates := []int{0, 4, 8, 16, 32}
	times := make([]time.Duration, len(candidates))
	for i := range times {
		times[i] = time.Duration(1 << 62)
	}
	for rep := 0; rep < 5; rep++ {
		for i, d := range candidates {
			prefetchDist.Store(int32(d))
			start := time.Now()
			m.MulVec(dst, x)
			if el := time.Since(start); el < times[i] {
				times[i] = el
			}
		}
	}
	best, bestT := 0, times[0]
	for i, d := range candidates {
		if times[i] < bestT {
			best, bestT = d, times[i]
		}
	}
	// Hysteresis: prefetch costs issue slots in every kernel (and is a pure
	// loss on hardware that ignores the hint), so it stays off unless a
	// candidate beats the plain kernel by ≥10% — beyond measurement noise.
	if best != 0 && float64(bestT) > 0.9*float64(times[0]) {
		best = 0
	}
	return best
}
