//go:build amd64

package sparse

import "unsafe"

// prefetchT0 issues a PREFETCHT0 hint for the cache line holding p: pull it
// into all cache levels without stalling. Purely a hint — no fault, no
// architectural effect — so kernels stay bit-identical with it on or off.
//
//go:noescape
func prefetchT0(p unsafe.Pointer)
