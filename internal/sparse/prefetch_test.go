package sparse

import (
	"testing"

	"bepi/internal/par"
)

// TestPrefetchBitIdentical sweeps the prefetch knob across every kernel the
// hint reaches: a prefetch is advisory to the cache, so results at any
// distance must match distance 0 by representation, serially and in
// parallel.
func TestPrefetchBitIdentical(t *testing.T) {
	defer resetPrefetchForTest()
	m := randBigCSR(2000, 1700, 15, 66)
	x := randVec(m.Cols(), 2)
	xt := randVec(m.Rows(), 3)
	const batch = 5
	xb := make([][]float64, batch)
	for k := range xb {
		xb[k] = randVec(m.Cols(), int64(20+k))
	}

	type outputs struct {
		mul, add, trT []float64
		bat           [][]float64
	}
	apply := func(m *CSR) outputs {
		var o outputs
		o.mul = make([]float64, m.Rows())
		m.MulVec(o.mul, x)
		o.add = randVec(m.Rows(), 4) // same seed every call: same initial dst
		m.AddMulVec(o.add, 0.7, x)
		o.trT = make([]float64, m.Cols())
		m.MulVecT(o.trT, xt)
		o.bat = make([][]float64, batch)
		for k := range o.bat {
			o.bat[k] = make([]float64, m.Rows())
		}
		m.MulVecBatch(o.bat, xb)
		return o
	}
	check := func(t *testing.T, d int, got, want outputs) {
		t.Helper()
		for name, pair := range map[string][2][]float64{
			"MulVec":    {got.mul, want.mul},
			"AddMulVec": {got.add, want.add},
			"MulVecT":   {got.trT, want.trT},
		} {
			if i, ok := bitsEqual(pair[0], pair[1]); !ok {
				t.Fatalf("distance=%d %s differs at %d", d, name, i)
			}
		}
		for k := range got.bat {
			if i, ok := bitsEqual(got.bat[k], want.bat[k]); !ok {
				t.Fatalf("distance=%d MulVecBatch rhs %d differs at %d", d, k, i)
			}
		}
	}

	SetPrefetchDistance(0)
	want := apply(m)
	for _, d := range []int{4, 8, 16, 32, 64} {
		SetPrefetchDistance(d)
		check(t, d, apply(m), want)
		// Parallel, both layouts, with the cached-transpose gather active.
		p := m.Clone().SetPool(par.NewPool(4))
		p.CacheTranspose()
		check(t, d, apply(p), want)
		c32 := Compact(m.Clone()).SetPool(par.NewPool(4))
		c32.CacheTranspose()
		gotT := make([]float64, m.Cols())
		c32.MulVecT(gotT, xt)
		// CSR32 transpose-gather vs the CSR scatter reference: == semantics
		// (zero signs may differ), like the layout contract elsewhere.
		for j := range gotT {
			if gotT[j] != want.trT[j] {
				t.Fatalf("distance=%d CSR32 MulVecT[%d] = %v, want %v", d, j, gotT[j], want.trT[j])
			}
		}
		gotB := make([][]float64, batch)
		for k := range gotB {
			gotB[k] = make([]float64, m.Rows())
		}
		c32.MulVecBatch(gotB, xb)
		for k := range gotB {
			if i, ok := bitsEqual(gotB[k], want.bat[k]); !ok {
				t.Fatalf("distance=%d CSR32 MulVecBatch rhs %d differs at %d", d, k, i)
			}
		}
	}
}

// TestPrefetchShortRows: rows shorter than the lookahead must neither crash
// nor prefetch out of range — the guarded lead loop simply never runs.
func TestPrefetchShortRows(t *testing.T) {
	defer resetPrefetchForTest()
	SetPrefetchDistance(maxPrefetchDistance)
	for name, m := range csr32Cases() {
		x := randVec(m.Cols(), 5)
		want := make([]float64, m.Rows())
		m.mulVecRange(want, x, 0, m.Rows()) // d read per call; same kernel, same knob
		got := make([]float64, m.Rows())
		m.MulVec(got, x)
		if i, ok := bitsEqual(got, want); !ok {
			t.Fatalf("%s: MulVec at max distance differs at %d", name, i)
		}
	}
}

// TestPrefetchDistanceClampAndPrecedence pins the knob semantics: clamping
// to [0, maxPrefetchDistance], and an explicit set winning over auto-tune.
func TestPrefetchDistanceClampAndPrecedence(t *testing.T) {
	defer resetPrefetchForTest()
	SetPrefetchDistance(-5)
	if d := PrefetchDistance(); d != 0 {
		t.Fatalf("negative distance clamped to %d, want 0", d)
	}
	SetPrefetchDistance(1 << 20)
	if d := PrefetchDistance(); d != maxPrefetchDistance {
		t.Fatalf("huge distance clamped to %d, want %d", d, maxPrefetchDistance)
	}
	SetPrefetchDistance(7)
	if d := AutoTunePrefetch(); d != 7 {
		t.Fatalf("AutoTunePrefetch overrode an explicit setting: %d", d)
	}
}

// TestPrefetchAutoTuneInRange: whatever the probe picks must be a valid
// knob value, and the choice must be sticky across calls.
func TestPrefetchAutoTuneInRange(t *testing.T) {
	defer resetPrefetchForTest()
	d := AutoTunePrefetch()
	if d < 0 || d > maxPrefetchDistance {
		t.Fatalf("auto-tuned distance %d out of range", d)
	}
	if again := AutoTunePrefetch(); again != d {
		t.Fatalf("auto-tune not stable: %d then %d", d, again)
	}
}

// TestStreamBandwidthProbe: the triad probe must report a positive roof and
// cache it — it is quoted on /metrics and in bench tables, so it cannot be
// re-measured per scrape.
func TestStreamBandwidthProbe(t *testing.T) {
	a := StreamBandwidth()
	if a <= 0 {
		t.Fatalf("StreamBandwidth() = %v, want > 0", a)
	}
	if b := StreamBandwidth(); b != a {
		t.Fatalf("StreamBandwidth not cached: %v then %v", a, b)
	}
}
