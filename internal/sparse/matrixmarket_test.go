package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		m := randCSR(rng, 1+rng.Intn(30), 1+rng.Intn(30), 0.2)
		var buf bytes.Buffer
		if err := m.WriteMatrixMarket(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !m.AlmostEqual(back, 1e-15) {
			t.Fatalf("trial %d: round trip changed values", trial)
		}
	}
}

func TestMatrixMarketSymmetricExpansion(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% lower triangle only
3 3 3
1 1 2.0
2 1 -1.5
3 2 4.0
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5 (expanded)", m.NNZ())
	}
	if m.At(0, 1) != -1.5 || m.At(1, 0) != -1.5 {
		t.Fatal("symmetric expansion missing")
	}
	if m.At(0, 0) != 2.0 {
		t.Fatal("diagonal must not be duplicated")
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 3 2
1 3
2 1
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 2) != 1 || m.At(1, 0) != 1 {
		t.Fatal("pattern entries must read as 1")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"garbage\n",
		"%%MatrixMarket matrix array real general\n2 2 0\n",
		"%%MatrixMarket matrix coordinate complex general\n2 2 0\n",
		"%%MatrixMarket matrix coordinate real weird\n2 2 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 3 0\n",
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error for %q", i, in)
		}
	}
}

func TestMatrixMarketCommentsAndBlanks(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment

% another
2 2 1

1 2 3.5
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 3.5 {
		t.Fatal("entry lost among comments")
	}
}
