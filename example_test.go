package bepi_test

import (
	"fmt"

	"bepi"
)

// ExampleNew demonstrates the basic preprocess-then-query flow.
func ExampleNew() {
	// A 4-node cycle with one branch.
	g, _ := bepi.NewGraph(4, []bepi.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 2, Dst: 3},
	})
	eng, _ := bepi.New(g)
	scores, _ := eng.Query(0)
	fmt.Printf("seed score %.3f, reachable nodes %d\n", scores[0], len(scores))
	// Output:
	// seed score 0.088, reachable nodes 4
}

// ExampleEngine_TopK ranks the nodes most related to a seed.
func ExampleEngine_TopK() {
	g, _ := bepi.NewGraph(5, []bepi.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 0, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 3},
	})
	eng, _ := bepi.New(g)
	top, _ := eng.TopK(0, 2)
	for _, r := range top {
		fmt.Println(r.Node)
	}
	// Output:
	// 2
	// 3
}

// ExampleEngine_Personalized computes multi-seed Personalized PageRank.
func ExampleEngine_Personalized() {
	g, _ := bepi.NewGraph(3, []bepi.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
	})
	eng, _ := bepi.New(g)
	q := []float64{0.5, 0.5, 0} // restart at nodes 0 and 1 equally
	r, _ := eng.Personalized(q)
	fmt.Printf("%.2f > %.2f: %v\n", r[1], r[2], r[1] > r[2])
	// Output:
	// 0.34 > 0.32: true
}
