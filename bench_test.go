// Benchmarks mirroring the paper's evaluation. There is one benchmark per
// table/figure (running the corresponding harness experiment at tiny size),
// plus per-phase micro-benchmarks for the costs those figures decompose
// into. Run the real experiments at full scale with:
//
//	go run ./cmd/bepi-bench all -size full
package bepi_test

import (
	"io"
	"testing"

	"bepi"
	"bepi/internal/bench"
	"bepi/internal/method"
)

// benchExperiment runs one harness experiment per b.N iteration.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	exp, ok := bench.FindExperiment(name)
	if !ok {
		b.Fatalf("experiment %q not found", name)
	}
	cfg := bench.Config{Size: bench.Tiny, Seeds: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			if err := t.Fprint(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable2DatasetStats(b *testing.B)        { benchExperiment(b, "table2") }
func BenchmarkFig1OverallComparison(b *testing.B)     { benchExperiment(b, "fig1") }
func BenchmarkTable3SchurSparsification(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4PreconditionerIters(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig4HubRatioTradeoff(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFig5Scalability(b *testing.B)           { benchExperiment(b, "fig5") }
func BenchmarkFig6Ablation(b *testing.B)              { benchExperiment(b, "fig6") }
func BenchmarkFig7EigenClustering(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8HubRatioSweep(b *testing.B)         { benchExperiment(b, "fig8") }
func BenchmarkFig10AccuracyCurves(b *testing.B)       { benchExperiment(b, "fig10") }
func BenchmarkFig11VsBear(b *testing.B)               { benchExperiment(b, "fig11") }
func BenchmarkFig12TotalTime(b *testing.B)            { benchExperiment(b, "fig12") }

// --- per-phase micro-benchmarks -----------------------------------------

func benchGraph() *bepi.Graph { return bepi.RMAT(11, 8, 77) }

// BenchmarkPreprocess* decompose Figure 1(a): the one-time cost per method.

func BenchmarkPreprocessBePI(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bepi.New(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreprocessBear(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := method.NewBear(method.Config{})
		if err := m.Preprocess(g.Internal()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreprocessLU(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := method.NewLU(method.Config{})
		if err := m.Preprocess(g.Internal()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuery* decompose Figure 1(c): per-query cost once preprocessed.

func benchQueryMethod(b *testing.B, m method.Method) {
	b.Helper()
	g := benchGraph()
	if err := m.Preprocess(g.Internal()); err != nil {
		b.Fatal(err)
	}
	seeds := bench.QuerySeeds(g.Internal(), 16, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Query(seeds[i%len(seeds)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryBePI(b *testing.B)  { benchQueryMethod(b, method.NewBePI(method.Config{})) }
func BenchmarkQueryBePIS(b *testing.B) { benchQueryMethod(b, method.NewBePIS(method.Config{})) }
func BenchmarkQueryBePIB(b *testing.B) { benchQueryMethod(b, method.NewBePIB(method.Config{})) }
func BenchmarkQueryGMRES(b *testing.B) { benchQueryMethod(b, method.NewFullGMRES(method.Config{})) }
func BenchmarkQueryPower(b *testing.B) { benchQueryMethod(b, method.NewPower(method.Config{})) }
func BenchmarkQueryBear(b *testing.B)  { benchQueryMethod(b, method.NewBear(method.Config{})) }
func BenchmarkQueryLU(b *testing.B)    { benchQueryMethod(b, method.NewLU(method.Config{})) }

// BenchmarkTopK measures the ranking path used by applications.
func BenchmarkTopK(b *testing.B) {
	g := benchGraph()
	eng, err := bepi.New(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.TopK(i%g.N(), 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSaveLoad measures index persistence round trips.
func BenchmarkSaveLoad(b *testing.B) {
	g := benchGraph()
	eng, err := bepi.New(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink countingWriter
		if err := eng.Save(&sink); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(sink))
	}
}

type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}
