package apps

import (
	"math"
	"math/rand"
	"testing"

	"bepi"
)

// planted builds a two-community graph with dense intra-group edges.
func planted(t *testing.T, groups, size int, pIn, pOut float64, seed int64) *bepi.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := groups * size
	var edges []bepi.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if u/size == v/size {
				p = pIn
			}
			if rng.Float64() < p {
				edges = append(edges, bepi.Edge{Src: u, Dst: v}, bepi.Edge{Src: v, Dst: u})
			}
		}
	}
	g, err := bepi.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func engine(t *testing.T, g *bepi.Graph) *bepi.Engine {
	t.Helper()
	eng, err := bepi.New(g, bepi.WithTolerance(1e-10))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestRecommenderExcludesNeighborsAndSelf(t *testing.T) {
	g := planted(t, 2, 40, 0.2, 0.01, 1)
	eng := engine(t, g)
	rec, err := NewRecommender(eng, g)
	if err != nil {
		t.Fatal(err)
	}
	u := 3
	recs, err := rec.Recommend(u, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	for _, r := range recs {
		if r.Node == u {
			t.Fatal("recommended self")
		}
		if g.HasEdge(u, r.Node) {
			t.Fatalf("recommended existing neighbor %d", r.Node)
		}
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Score > recs[i-1].Score {
			t.Fatal("not sorted by score")
		}
	}
	// Recommendations should come from u's own community.
	inGroup := 0
	for _, r := range recs {
		if r.Node/40 == u/40 {
			inGroup++
		}
	}
	if inGroup < len(recs)*3/4 {
		t.Fatalf("only %d/%d recommendations in the seed's community", inGroup, len(recs))
	}
}

func TestRecommenderSizeMismatch(t *testing.T) {
	g := planted(t, 2, 20, 0.3, 0.02, 2)
	eng := engine(t, g)
	other := planted(t, 2, 10, 0.3, 0.02, 2)
	if _, err := NewRecommender(eng, other); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestEvaluateHoldoutBeatsNothing(t *testing.T) {
	full := planted(t, 2, 40, 0.25, 0.01, 3)
	// Hide one edge per node for the first 20 nodes.
	rng := rand.New(rand.NewSource(4))
	hiddenSet := map[[2]int]bool{}
	var hidden []bepi.Edge
	for u := 0; u < 20; u++ {
		nbrs := full.OutNeighbors(u)
		if len(nbrs) < 3 {
			continue
		}
		v := nbrs[rng.Intn(len(nbrs))]
		if !hiddenSet[[2]int{u, v}] {
			hiddenSet[[2]int{u, v}] = true
			hidden = append(hidden, bepi.Edge{Src: u, Dst: v})
		}
	}
	var train []bepi.Edge
	for _, e := range full.Edges() {
		if !hiddenSet[[2]int{e.Src, e.Dst}] {
			train = append(train, e)
		}
	}
	tg, err := bepi.NewGraph(full.N(), train)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine(t, tg)
	rec, err := NewRecommender(eng, tg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rec.EvaluateHoldout(hidden, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tested != len(hidden) {
		t.Fatalf("tested %d, want %d", res.Tested, len(hidden))
	}
	// With dense communities of 40 nodes and top-15 candidates, RWR should
	// recover a sizeable fraction of hidden edges.
	if res.HitRate() < 0.3 {
		t.Fatalf("hit rate %.2f too low", res.HitRate())
	}
}

func TestLocalCommunityRecoversPlantedGroup(t *testing.T) {
	g := planted(t, 4, 50, 0.15, 0.002, 5)
	eng := engine(t, g)
	com, err := LocalCommunity(eng, g, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(com.Members) == 0 {
		t.Fatal("empty community")
	}
	if !com.Contains(10) {
		t.Fatal("community should contain the seed")
	}
	correct := 0
	for _, u := range com.Members {
		if u/50 == 0 {
			correct++
		}
	}
	prec := float64(correct) / float64(len(com.Members))
	if prec < 0.9 {
		t.Fatalf("precision %.2f (size %d)", prec, len(com.Members))
	}
	if com.Conductance <= 0 || com.Conductance >= 0.5 {
		t.Fatalf("conductance %v outside expected range", com.Conductance)
	}
	// The sweep's conductance must agree with the standalone computation.
	if got := Conductance(g, com.Members); math.Abs(got-com.Conductance) > 1e-12 {
		t.Fatalf("Conductance(%d nodes) = %v, sweep said %v", len(com.Members), got, com.Conductance)
	}
}

func TestConductanceEdgeCases(t *testing.T) {
	g := planted(t, 2, 10, 0.5, 0.05, 6)
	if got := Conductance(g, nil); got != 1 {
		t.Fatalf("empty set conductance = %v", got)
	}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	if got := Conductance(g, all); got != 1 {
		t.Fatalf("full set conductance = %v", got)
	}
}

func TestPageRankProperties(t *testing.T) {
	g := planted(t, 2, 30, 0.2, 0.05, 7)
	eng := engine(t, g)
	pr, err := PageRank(eng)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, v := range pr {
		if v < 0 {
			t.Fatalf("negative PageRank at %d", i)
		}
		sum += v
	}
	// No deadends in a planted symmetric graph, so mass is conserved.
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank mass %v, want 1", sum)
	}
	// Higher-degree nodes should tend to rank higher: compare the max
	// against the min-degree node.
	maxDeg, maxNode := -1, -1
	minDeg, minNode := 1<<30, -1
	for u := 0; u < g.N(); u++ {
		d := g.OutDegree(u)
		if d > maxDeg {
			maxDeg, maxNode = d, u
		}
		if d < minDeg {
			minDeg, minNode = d, u
		}
	}
	if maxDeg > 2*minDeg && pr[maxNode] <= pr[minNode] {
		t.Fatalf("degree-%d node (%v) should outrank degree-%d node (%v)",
			maxDeg, pr[maxNode], minDeg, pr[minNode])
	}
}

func TestEdgeAnomaly(t *testing.T) {
	// Two 4-cliques {0..3} and {4..7} joined only by 0↔4. From node 0's
	// perspective the cross-clique edge is the anomalous one: its own
	// clique mates reinforce each other's scores, the stranger does not.
	var edges []bepi.Edge
	clique := func(lo, hi int) {
		for u := lo; u <= hi; u++ {
			for v := lo; v <= hi; v++ {
				if u != v {
					edges = append(edges, bepi.Edge{Src: u, Dst: v})
				}
			}
		}
	}
	clique(0, 3)
	clique(4, 7)
	edges = append(edges, bepi.Edge{Src: 0, Dst: 4}, bepi.Edge{Src: 4, Dst: 0})
	g, err := bepi.NewGraph(8, edges)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine(t, g)
	aClique, err := EdgeAnomaly(eng, g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	aCross, err := EdgeAnomaly(eng, g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if aCross <= aClique {
		t.Fatalf("cross-clique anomaly %v should exceed in-clique %v", aCross, aClique)
	}
	if aCross != 1 {
		t.Fatalf("stranger should be the least expected neighbor, got %v", aCross)
	}
	// Degenerate: a node with one neighbor has nothing to compare against.
	single, err := bepi.NewGraph(2, []bepi.Edge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sEng := engine(t, single)
	if a, err := EdgeAnomaly(sEng, single, 0, 1); err != nil || a != 0 {
		t.Fatalf("single-neighbor anomaly = %v, %v", a, err)
	}
}
