// Package apps builds the graph-mining applications that motivate RWR in
// the BePI paper's introduction — personalized ranking, link prediction,
// local community detection, global PageRank and edge anomaly scoring — on
// top of the bepi engine. Each application is a thin, well-tested layer
// over Engine.Query, demonstrating the "one index, many applications"
// usage the preprocessing approach is designed for.
package apps

import (
	"fmt"
	"math"
	"sort"

	"bepi"
)

// Recommender suggests new links for a node by RWR proximity, the link
// recommendation use case of Figure 2.
type Recommender struct {
	eng *bepi.Engine
	g   *bepi.Graph
}

// NewRecommender builds a recommender over a preprocessed engine and the
// graph it was built from.
func NewRecommender(eng *bepi.Engine, g *bepi.Graph) (*Recommender, error) {
	if eng.N() != g.N() {
		return nil, fmt.Errorf("apps: engine has %d nodes, graph %d", eng.N(), g.N())
	}
	return &Recommender{eng: eng, g: g}, nil
}

// Recommend returns up to k nodes ranked by RWR score w.r.t. u, excluding
// u itself and u's existing out-neighbors.
func (r *Recommender) Recommend(u, k int) ([]bepi.Ranked, error) {
	scores, err := r.eng.Query(u)
	if err != nil {
		return nil, err
	}
	type cand struct {
		node  int
		score float64
	}
	cands := make([]cand, 0, len(scores))
	for node, s := range scores {
		if node == u || s <= 0 || r.g.HasEdge(u, node) {
			continue
		}
		cands = append(cands, cand{node, s})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].node < cands[j].node
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]bepi.Ranked, k)
	for i := 0; i < k; i++ {
		out[i] = bepi.Ranked{Node: cands[i].node, Score: cands[i].score}
	}
	return out, nil
}

// HoldoutResult reports a link-prediction evaluation.
type HoldoutResult struct {
	Tested int
	Hits   int // hidden endpoint ranked within the top-k recommendations
	K      int
}

// HitRate returns Hits/Tested.
func (h HoldoutResult) HitRate() float64 {
	if h.Tested == 0 {
		return 0
	}
	return float64(h.Hits) / float64(h.Tested)
}

// EvaluateHoldout measures hits@k: for each (src, hiddenDst) pair, whether
// hiddenDst appears in the top-k recommendations for src. The engine must
// have been built on the graph WITHOUT the hidden edges.
func (r *Recommender) EvaluateHoldout(hidden []bepi.Edge, k int) (HoldoutResult, error) {
	res := HoldoutResult{K: k}
	for _, h := range hidden {
		recs, err := r.Recommend(h.Src, k)
		if err != nil {
			return res, err
		}
		res.Tested++
		for _, rec := range recs {
			if rec.Node == h.Dst {
				res.Hits++
				break
			}
		}
	}
	return res, nil
}

// Community is a local community found by a conductance sweep.
type Community struct {
	Members     []int
	Conductance float64
}

// Contains reports membership.
func (c Community) Contains(u int) bool {
	for _, m := range c.Members {
		if m == u {
			return true
		}
	}
	return false
}

// LocalCommunity finds the community around seed by the standard RWR sweep
// (Andersen–Chung–Lang): order nodes by degree-normalized RWR score and cut
// at the prefix with minimal conductance. minSize avoids trivially small
// cuts (pass 0 for no minimum).
func LocalCommunity(eng *bepi.Engine, g *bepi.Graph, seed, minSize int) (Community, error) {
	scores, err := eng.Query(seed)
	if err != nil {
		return Community{}, err
	}
	type cand struct {
		node int
		val  float64
	}
	var order []cand
	for u := 0; u < g.N(); u++ {
		d := g.OutDegree(u)
		if d == 0 || scores[u] <= 0 {
			continue
		}
		order = append(order, cand{u, scores[u] / float64(d)})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].val != order[j].val {
			return order[i].val > order[j].val
		}
		return order[i].node < order[j].node
	})
	if len(order) == 0 {
		return Community{Members: []int{seed}, Conductance: 1}, nil
	}

	totalVol := 0
	for u := 0; u < g.N(); u++ {
		totalVol += g.OutDegree(u)
	}
	inSet := make([]bool, g.N())
	vol, cut := 0, 0
	bestPhi := math.Inf(1)
	bestSize := 0
	if minSize < 1 {
		minSize = 1
	}
	for i, c := range order {
		u := c.node
		inSet[u] = true
		vol += g.OutDegree(u)
		for _, v := range g.OutNeighbors(u) {
			if inSet[v] {
				cut--
			} else {
				cut++
			}
		}
		if vol == 0 || vol >= totalVol {
			break
		}
		denom := vol
		if totalVol-vol < denom {
			denom = totalVol - vol
		}
		phi := float64(cut) / float64(denom)
		if i+1 >= minSize && phi < bestPhi {
			bestPhi, bestSize = phi, i+1
		}
	}
	if bestSize == 0 {
		bestSize = len(order)
		bestPhi = 1
	}
	members := make([]int, bestSize)
	for i := 0; i < bestSize; i++ {
		members[i] = order[i].node
	}
	sort.Ints(members)
	return Community{Members: members, Conductance: bestPhi}, nil
}

// Conductance returns cut(S, V∖S) / min(vol(S), vol(V∖S)) for the node set,
// treating edges as directed volume. It returns 1 for empty or full sets.
func Conductance(g *bepi.Graph, set []int) float64 {
	in := make(map[int]bool, len(set))
	for _, u := range set {
		in[u] = true
	}
	totalVol := 0
	for u := 0; u < g.N(); u++ {
		totalVol += g.OutDegree(u)
	}
	vol, cut := 0, 0
	for _, u := range set {
		vol += g.OutDegree(u)
		for _, v := range g.OutNeighbors(u) {
			if !in[v] {
				cut++
			}
		}
	}
	if vol == 0 || vol >= totalVol {
		return 1
	}
	denom := vol
	if totalVol-vol < denom {
		denom = totalVol - vol
	}
	return float64(cut) / float64(denom)
}

// PageRank computes the global PageRank vector — Personalized PageRank with
// the uniform restart distribution — through the same preprocessed engine.
func PageRank(eng *bepi.Engine) ([]float64, error) {
	n := eng.N()
	if n == 0 {
		return nil, nil
	}
	q := make([]float64, n)
	u := 1 / float64(n)
	for i := range q {
		q[i] = u
	}
	return eng.Personalized(q)
}

// EdgeAnomaly scores how surprising the edge (u, v) is: the "normality" is
// v's RWR score from u relative to u's other neighbors (Sun et al.'s
// neighborhood-formation idea). The returned anomaly score is in [0, 1];
// 0 means v is u's most expected neighbor, 1 the least.
func EdgeAnomaly(eng *bepi.Engine, g *bepi.Graph, u, v int) (float64, error) {
	scores, err := eng.Query(u)
	if err != nil {
		return 0, err
	}
	nbrs := g.OutNeighbors(u)
	if len(nbrs) <= 1 {
		return 0, nil
	}
	below := 0
	for _, w := range nbrs {
		if w == v {
			continue
		}
		if scores[w] < scores[v] {
			below++
		}
	}
	return 1 - float64(below)/float64(len(nbrs)-1), nil
}
