// Package bepi computes Random Walk with Restart (RWR) proximity scores on
// large directed graphs. It implements BePI (Jung, Park, Sael, Kang —
// SIGMOD 2017), a hybrid of preprocessing and iterative methods: a one-time
// preprocessing phase reorders the graph around its deadends and
// hub-and-spoke structure, factors the easy block-diagonal part exactly,
// and keeps only a sparse Schur complement that each query solves with
// ILU-preconditioned GMRES.
//
// Basic usage:
//
//	g, _ := bepi.NewGraph(4, []bepi.Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
//	eng, _ := bepi.New(g)
//	scores, _ := eng.Query(0)            // RWR scores w.r.t. node 0
//	top, _ := eng.TopK(0, 10)            // ten most related nodes
//
// The preprocessed index can be persisted with Engine.Save and reloaded
// with Load, so the (comparatively expensive) preprocessing phase runs only
// once per graph.
package bepi

import (
	"fmt"
	"io"
	"time"

	"bepi/internal/core"
	"bepi/internal/gen"
	"bepi/internal/graph"
)

// Version identifies this build of the serving system; it is surfaced as
// the bepi_build_info gauge on every Prometheus exposition and carried on
// /metrics/snapshot payloads so a mixed-version fleet is visible at the
// coordinator. Bump it with behavior-visible releases.
const Version = "0.9.0"

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst int
}

// Graph is an immutable directed graph over nodes 0..N-1.
type Graph struct {
	inner *graph.Graph
}

// NewGraph builds a graph with n nodes from the given edges. Duplicate
// edges collapse; nodes without out-edges are deadends (handled natively by
// the solver).
func NewGraph(n int, edges []Edge) (*Graph, error) {
	es := make([]graph.Edge, len(edges))
	for i, e := range edges {
		es[i] = graph.Edge{Src: e.Src, Dst: e.Dst}
	}
	g, err := graph.New(n, es)
	if err != nil {
		return nil, err
	}
	return &Graph{inner: g}, nil
}

// ReadGraph parses a whitespace-separated "src dst" edge list ('#' and '%'
// lines are comments). The node count is the largest id seen plus one.
func ReadGraph(r io.Reader) (*Graph, error) {
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return &Graph{inner: g}, nil
}

// ReadGraphMatrixMarket parses a MatrixMarket coordinate stream as a
// directed graph (each stored entry (i, j) is the edge i→j).
func ReadGraphMatrixMarket(r io.Reader) (*Graph, error) {
	g, err := graph.ReadMatrixMarketGraph(r)
	if err != nil {
		return nil, err
	}
	return &Graph{inner: g}, nil
}

// WriteMatrixMarket writes the graph's adjacency pattern in MatrixMarket
// coordinate format.
func (g *Graph) WriteMatrixMarket(w io.Writer) error { return g.inner.WriteMatrixMarket(w) }

// RMAT generates a synthetic power-law graph with 2^scale nodes and about
// edgeFactor·2^scale edges — the structure (hubs, spokes, deadends) BePI is
// designed for. Deterministic in seed.
func RMAT(scale, edgeFactor int, seed int64) *Graph {
	return &Graph{inner: gen.RMAT(gen.DefaultRMAT(scale, edgeFactor, seed))}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.inner.N() }

// M returns the number of distinct directed edges.
func (g *Graph) M() int { return g.inner.M() }

// WriteEdgeList writes the graph as a "src dst" edge list.
func (g *Graph) WriteEdgeList(w io.Writer) error { return g.inner.WriteEdgeList(w) }

// Edges returns all edges in (src, dst) order.
func (g *Graph) Edges() []Edge {
	inner := g.inner.Edges()
	out := make([]Edge, len(inner))
	for i, e := range inner {
		out[i] = Edge{Src: e.Src, Dst: e.Dst}
	}
	return out
}

// HasEdge reports whether the directed edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool { return g.inner.HasEdge(u, v) }

// OutDegree returns the number of out-edges of node u.
func (g *Graph) OutDegree(u int) int { return g.inner.OutDegree(u) }

// OutNeighbors returns the sorted out-neighbors of node u (do not mutate).
func (g *Graph) OutNeighbors(u int) []int { return g.inner.OutNeighbors(u) }

// Internal exposes the internal graph representation for the example and
// benchmark programs inside this module.
func (g *Graph) Internal() *graph.Graph { return g.inner }

// Variant selects the algorithm version; the default (full BePI) is right
// for almost all uses. The reduced variants exist for ablation studies.
type Variant = core.Variant

// Algorithm variants.
const (
	// BePIB disables both Schur sparsification and preconditioning.
	BePIB = core.VariantB
	// BePIS enables Schur sparsification only.
	BePIS = core.VariantS
	// BePIFull is the complete algorithm (default).
	BePIFull = core.VariantFull
)

// Option customizes engine construction.
type Option func(*core.Options)

// WithRestartProb sets the restart probability c ∈ (0, 1); default 0.05.
// Smaller c spreads scores further from the seed.
func WithRestartProb(c float64) Option {
	return func(o *core.Options) { o.C = c }
}

// WithTolerance sets the solver tolerance ε; default 1e-9.
func WithTolerance(tol float64) Option {
	return func(o *core.Options) { o.Tol = tol }
}

// WithVariant selects BePIB, BePIS or BePIFull (default BePIFull).
func WithVariant(v Variant) Option {
	return func(o *core.Options) { o.Variant = v }
}

// WithHubRatio overrides the SlashBurn hub selection ratio k ∈ (0, 1);
// defaults follow the paper (0.2, or 0.001 for BePIB).
func WithHubRatio(k float64) Option {
	return func(o *core.Options) { o.HubRatio = k }
}

// SchurSolver selects the iterative solver for the Schur system.
type SchurSolver = core.SchurSolver

// Schur solvers.
const (
	// SolverGMRES is the paper's solver (default).
	SolverGMRES = core.SolverGMRES
	// SolverBiCGSTAB uses constant memory in the iteration count.
	SolverBiCGSTAB = core.SolverBiCGSTAB
)

// WithSchurSolver selects GMRES (default) or BiCGSTAB for the per-query
// Schur-complement solve.
func WithSchurSolver(s SchurSolver) Option {
	return func(o *core.Options) { o.Solver = s }
}

// WithMaxIterations bounds GMRES iterations per query; default 1000.
func WithMaxIterations(n int) Option {
	return func(o *core.Options) { o.MaxIter = n }
}

// WithMemoryBudget aborts preprocessing if the index would exceed the given
// number of bytes.
func WithMemoryBudget(bytes int64) Option {
	return func(o *core.Options) { o.MemoryBudget = bytes }
}

// WithDeadline aborts preprocessing if it runs longer than d.
func WithDeadline(d time.Duration) Option {
	return func(o *core.Options) { o.Deadline = d }
}

// WithParallelism caps how many cores preprocessing and the query kernels
// use: 0 (default) shares a process-wide GOMAXPROCS-sized pool with every
// other engine, 1 forces serial execution, n > 1 gives the engine its own
// n-worker pool. Results are bit-identical at every setting.
func WithParallelism(n int) Option {
	return func(o *core.Options) { o.Parallelism = n }
}

// WithPinnedWorkers locks the engine's dedicated kernel workers to OS
// threads (effective with WithParallelism(n), n > 1): combined with the
// engine's first-touch partition placement this keeps each worker streaming
// the matrix pages it faulted in — the NUMA-friendly sticky configuration.
// Results are bit-identical either way.
func WithPinnedWorkers(on bool) Option {
	return func(o *core.Options) { o.PinWorkers = on }
}

// WithCompact selects the in-memory matrix layout: true (the default) keeps
// the preprocessed matrices in the compact CSR32 form (uint32 column
// indices, narrow row pointers — roughly half the index bytes), false keeps
// the wide CSR form. Query results are bit-identical either way.
func WithCompact(on bool) Option {
	return func(o *core.Options) {
		if on {
			o.Compact = core.CompactOn
		} else {
			o.Compact = core.CompactOff
		}
	}
}

// WithMaxHubDrift bounds how far hub-touching incremental updates may
// perturb the Schur complement before a Dynamic flush falls back to a full
// rebuild: the drift score is ‖S_now − S_base‖F/‖S_base‖F accumulated
// across hub deltas. 0 (the default) selects 0.1; a negative value disables
// the hub-delta path entirely, so any hub-touching delta triggers a full
// rebuild. Spoke-only deltas are exact and unaffected by this knob.
func WithMaxHubDrift(max float64) Option {
	return func(o *core.Options) { o.MaxHubDrift = max }
}

// Engine is a preprocessed RWR index. It is safe for concurrent queries.
type Engine struct {
	inner *core.Engine
}

// New preprocesses the graph and returns a query-ready engine.
func New(g *Graph, opts ...Option) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("bepi: nil graph")
	}
	var o core.Options
	for _, opt := range opts {
		opt(&o)
	}
	e, err := core.Preprocess(g.inner, o)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: e}, nil
}

// N returns the number of nodes the engine was built for.
func (e *Engine) N() int { return e.inner.N() }

// Query returns the RWR score vector for the seed node: scores[u] is the
// steady-state probability that a random surfer restarting at seed is at u.
func (e *Engine) Query(seed int) ([]float64, error) {
	r, _, err := e.inner.Query(seed)
	return r, err
}

// QueryStats reports the cost of one query alongside its result.
type QueryStats struct {
	Duration   time.Duration
	Iterations int // GMRES iterations on the Schur system
	Residual   float64
}

// QueryWithStats is Query plus solve statistics.
func (e *Engine) QueryWithStats(seed int) ([]float64, QueryStats, error) {
	r, st, err := e.inner.Query(seed)
	return r, QueryStats{Duration: st.Duration, Iterations: st.Iterations, Residual: st.Residual}, err
}

// Personalized computes Personalized PageRank for an arbitrary starting
// distribution q (length N; entries should sum to 1). RWR is the
// single-seed special case.
func (e *Engine) Personalized(q []float64) ([]float64, error) {
	r, _, err := e.inner.QueryVector(q)
	return r, err
}

// Ranked is a node with its RWR score.
type Ranked struct {
	Node  int
	Score float64
}

// TopK returns the k nodes most related to seed (descending score, seed
// excluded).
func (e *Engine) TopK(seed, k int) ([]Ranked, error) {
	rs, err := e.inner.TopK(seed, k)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, len(rs))
	for i, r := range rs {
		out[i] = Ranked{Node: r.Node, Score: r.Score}
	}
	return out, nil
}

// TopKBounded is TopK with certified early termination: the Schur solve
// halts as soon as a calibrated score-error radius proves the k-th /
// (k+1)-th gap can no longer change which k nodes win. The returned SET
// is always identical to TopK's; earlyStopped reports whether the
// certificate fired (when false the solve ran to the engine tolerance and
// the result is bit-identical to TopK, order included). The first bounded
// call calibrates the radius with a few reference solves; services that
// care about first-query latency should issue a throwaway call at warmup.
func (e *Engine) TopKBounded(seed, k int) ([]Ranked, bool, error) {
	rs, st, err := e.inner.TopKBounded(seed, k)
	if err != nil {
		return nil, false, err
	}
	out := make([]Ranked, len(rs))
	for i, r := range rs {
		out[i] = Ranked{Node: r.Node, Score: r.Score}
	}
	return out, st.EarlyStopped, nil
}

// MemoryBytes reports the footprint of the preprocessed index.
func (e *Engine) MemoryBytes() int64 { return e.inner.MemoryBytes() }

// SetParallelism re-points the engine at a compute pool for the given
// parallelism level (same semantics as WithParallelism). Indexes loaded
// with Load start on the shared pool; call this before serving queries —
// it must not race with them.
func (e *Engine) SetParallelism(n int) { e.inner.SetParallelism(n) }

// SetCompact switches the engine between the compact CSR32 layout (true)
// and the wide CSR layout (false) in place. Not safe to call concurrently
// with queries.
func (e *Engine) SetCompact(on bool) { e.inner.SetCompact(on) }

// Compacted reports whether the compact layout is active.
func (e *Engine) Compacted() bool { return e.inner.Compacted() }

// Drift reports the engine's accumulated hub-delta drift score — how far
// incremental hub updates have moved the true Schur complement from the
// factored base (see WithMaxHubDrift). Zero for engines whose factors are
// exact for the graph they serve, including all spoke-only delta rebuilds.
func (e *Engine) Drift() float64 { return e.inner.Drift() }

// Corrected reports whether the engine serves through a Woodbury low-rank
// correction installed by a hub delta. Corrected engines answer within the
// solver tolerance but are not bit-identical to a full rebuild, cannot be
// Saved, and serve top-k without certified early termination.
func (e *Engine) Corrected() bool { return e.inner.Corrected() }

// PreprocessTime reports how long preprocessing took.
func (e *Engine) PreprocessTime() time.Duration { return e.inner.PrepStats().Total }

// Save persists the preprocessed index.
func (e *Engine) Save(w io.Writer) error {
	_, err := e.inner.WriteTo(w)
	return err
}

// Load reloads an index written by Save.
func Load(r io.Reader) (*Engine, error) {
	inner, err := core.ReadEngine(r)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// Internal exposes the core engine for the benchmark and example programs
// inside this module.
func (e *Engine) Internal() *core.Engine { return e.inner }
