module bepi

go 1.22
