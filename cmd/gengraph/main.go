// Command gengraph writes synthetic benchmark graphs as edge lists.
//
//	gengraph -kind rmat -scale 14 -ef 12 -seed 1 -out graph.txt
//	gengraph -kind ba   -n 10000 -m 5   -seed 1 -out graph.txt
//	gengraph -kind er   -n 10000 -edges 80000 -seed 1 -out graph.txt
//	gengraph -kind ws   -n 241 -k 4 -beta 0.1 -seed 1 -out graph.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"bepi/internal/gen"
	"bepi/internal/graph"
)

func main() {
	kind := flag.String("kind", "rmat", "generator: rmat | hybrid | ba | er | ws | fig2")
	format := flag.String("format", "edgelist", "output format: edgelist | mtx")
	out := flag.String("out", "", "output file (default stdout)")
	seed := flag.Int64("seed", 1, "random seed")
	// R-MAT parameters.
	scale := flag.Int("scale", 12, "rmat: log2 of node count")
	ef := flag.Int("ef", 8, "rmat: edge factor")
	deadends := flag.Float64("deadends", 0.2, "rmat: injected deadend fraction")
	// Shared size parameters.
	n := flag.Int("n", 10000, "ba/er/ws: node count")
	m := flag.Int("m", 3, "ba: edges per new node")
	edges := flag.Int("edges", 50000, "er: edge count")
	k := flag.Int("k", 4, "ws: neighbors per side")
	beta := flag.Float64("beta", 0.1, "ws: rewiring probability")
	flag.Parse()

	var g *graph.Graph
	switch *kind {
	case "rmat":
		cfg := gen.DefaultRMAT(*scale, *ef, *seed)
		cfg.DeadendFrac = *deadends
		g = gen.RMAT(cfg)
	case "hybrid":
		cfg := gen.DefaultHybrid(*scale, *ef, *seed)
		cfg.DeadendFrac = *deadends
		g = gen.Hybrid(cfg)
	case "ba":
		g = gen.BarabasiAlbert(*n, *m, *seed)
	case "er":
		g = gen.ErdosRenyi(*n, *edges, *seed)
	case "ws":
		g = gen.WattsStrogatz(*n, *k, *beta, *seed)
	case "fig2":
		g = gen.Figure2()
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "edgelist":
		err = g.WriteEdgeList(w)
	case "mtx":
		err = g.WriteMatrixMarket(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gengraph: %s kind=%s\n", g, *kind)
}
