// Command bepi-serve serves RWR queries from a preprocessed index over
// HTTP/JSON through the qexec execution subsystem (pooled workspaces,
// batched multi-seed solves, score cache, admission control).
//
//	bepi-serve -index graph.idx -addr :8080
//
//	curl localhost:8080/query?seed=42&topk=10
//	curl localhost:8080/stats
//	curl localhost:8080/metrics
//	curl -X POST localhost:8080/personalized -d '{"weights":{"3":0.5,"9":0.5}}'
//
// With -graph (an edge-list file instead of a preprocessed index) the
// server runs in dynamic mode: POST /edges buffers edge updates, POST
// /flush rebuilds the index in the background and atomically swaps it in
// (202 + rebuild id; poll GET /flush/{id}), and queries keep answering
// from the previous index for the whole rebuild.
//
//	bepi-serve -graph graph.txt -addr :8080
//
//	curl -X POST localhost:8080/edges -d '{"add":[{"src":1,"dst":9}]}'
//	curl -X POST localhost:8080/flush
//	curl localhost:8080/flush/1
//
// With -coordinator the process serves no index of its own; it fronts a
// fleet of replica bepi-serve instances with consistent-hash routing keyed
// by seed, health checking with ejection/readmission, and generation-aware
// scatter-gather (see internal/cluster):
//
//	bepi-serve -coordinator -replicas localhost:8081,localhost:8082 -addr :8080
//
//	curl localhost:8080/query?seed=42&topk=10      # routed to seed 42's owner
//	curl -X POST localhost:8080/batch -d '{"seeds":[1,2,3],"topk":10}'
//	curl localhost:8080/replicas
//
// Observability: /metrics serves JSON (or Prometheus text to scrapers),
// /debug/traces the recent per-query stage traces, and /debug/events the
// always-on flight-recorder ring. In coordinator mode /metrics additionally
// aggregates mergeable histograms from every replica into fleet-wide
// quantiles, and /debug/traces?trace=ID assembles the cross-process trace
// tree — trace context propagates to replicas via the X-Bepi-Trace header,
// and appending ?trace=1 to any query forces a trace and echoes its ID.
// -slow-query logs queries over a threshold through log/slog; -trace-sample
// thins tracing under load; -debug-addr opens a second, private listener
// with net/http/pprof (keep it off the serving port — profiles are
// expensive and unauthenticated).
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, in-flight
// requests get up to -shutdown-timeout to finish, and the execution pool
// drains.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bepi"
	"bepi/internal/cluster"
	"bepi/internal/obs"
	"bepi/internal/qexec"
	"bepi/internal/server"
	"bepi/internal/sparse"
)

// pprofServer starts the private debug listener: the four pprof handlers
// on an explicit mux, so nothing else (in particular the query endpoints)
// leaks onto the debug port.
func pprofServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("bepi-serve: debug listener: %v", err)
		}
	}()
	return srv
}

// runCoordinator is the -coordinator entry point: front the replica fleet
// with the cluster coordinator instead of serving an index locally.
func runCoordinator(addr, replicaList string, healthInterval time.Duration, retries, traceSample int, slowQuery time.Duration, debugAddr string, shutdownTimeout time.Duration) {
	var backends []cluster.Backend
	for _, a := range strings.Split(replicaList, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		backends = append(backends, cluster.NewHTTPBackend(a, nil))
	}
	if len(backends) == 0 {
		fmt.Fprintln(os.Stderr, "bepi-serve: -coordinator requires -replicas host:port[,host:port...]")
		os.Exit(2)
	}
	coord, err := cluster.New(backends, cluster.Config{
		HealthInterval: healthInterval,
		Retries:        retries,
		Obs: obs.New(obs.Options{
			TraceSample: traceSample,
			SlowQuery:   slowQuery,
			Logger:      slog.Default(),
		}),
	})
	if err != nil {
		log.Fatalf("bepi-serve: %v", err)
	}
	log.Printf("coordinator: %d replicas, health probes every %v, retry budget %d",
		len(backends), healthInterval, retries)
	if debugAddr != "" {
		dbg := pprofServer(debugAddr)
		defer dbg.Close()
		log.Printf("obs: pprof on %s/debug/pprof/", debugAddr)
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           cluster.NewHandler(coord),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("coordinating RWR queries on %s", addr)

	select {
	case err := <-errc:
		log.Fatalf("bepi-serve: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("shutting down (in-flight grace %v)", shutdownTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("bepi-serve: shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("bepi-serve: %v", err)
		}
		coord.Close()
		log.Printf("bye")
	}
}

func layoutName(compact bool) string {
	if compact {
		return "compact CSR32"
	}
	return "wide CSR"
}

func main() {
	indexPath := flag.String("index", "", "index file built by `bepi preprocess` (static mode; exactly one of -index/-graph)")
	graphPath := flag.String("graph", "", "edge-list file to preprocess at startup and serve with online updates (dynamic mode)")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
	maxBatch := flag.Int("batch-max", 0, "max queries coalesced into one multi-seed solve (0 = default 8)")
	batchWindow := flag.Duration("batch-window", 0, "how long a non-full batch waits for more queries (0 = default 200µs, negative disables)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue bound; excess requests get 429 (0 = default 4×workers×batch-max)")
	cacheEntries := flag.Int("cache-entries", 0, "LRU score-cache capacity (0 = default 1024, negative disables)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline enforced inside the solver (0 = none)")
	parallelism := flag.Int("parallelism", 0, "per-solve kernel worker cap (0 = keep engine default, 1 = serial kernels)")
	prefetch := flag.Int("prefetch", -1, "SpMV gather prefetch distance: -1 auto-calibrates at warmup, 0 disables, n > 0 fixes the lookahead")
	pinWorkers := flag.Bool("pin-workers", false, "pin dedicated kernel workers to OS threads (with -parallelism > 1) for sticky NUMA-friendly placement")
	compact := flag.Bool("compact", true, "serve from the compact CSR32 matrix layout (false = wide CSR; results are bit-identical)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this threshold via slog (0 = disabled)")
	traceSample := flag.Int("trace-sample", qexec.DefaultTraceSample, "trace every Nth query into /debug/traces (1 = all; tracing allocates, sampling keeps it off the hot path)")
	debugAddr := flag.String("debug-addr", "", "private listen address for net/http/pprof (empty = disabled)")
	maxHubDrift := flag.Float64("max-hub-drift", 0, "dynamic mode: hub-delta drift threshold before a flush falls back to a full rebuild (0 = default 0.1, negative disables incremental hub updates)")
	coordinator := flag.Bool("coordinator", false, "run as a cluster coordinator fronting -replicas instead of serving an index")
	replicas := flag.String("replicas", "", "comma-separated replica addresses (host:port) for -coordinator mode")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "coordinator replica health-probe period")
	retriesFlag := flag.Int("retries", 2, "coordinator retry budget: failed queries retry up to this many ring successors")
	flag.Parse()
	if *prefetch >= 0 {
		sparse.SetPrefetchDistance(*prefetch)
	}
	if *coordinator {
		runCoordinator(*addr, *replicas, *healthInterval, *retriesFlag, *traceSample, *slowQuery, *debugAddr, *shutdownTimeout)
		return
	}
	if (*indexPath == "") == (*graphPath == "") {
		fmt.Fprintln(os.Stderr, "bepi-serve: exactly one of -index (static) or -graph (dynamic) is required")
		os.Exit(2)
	}

	cfg := qexec.Config{
		Workers:      *workers,
		MaxBatch:     *maxBatch,
		BatchWindow:  *batchWindow,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		Timeout:      *queryTimeout,
		Parallelism:  *parallelism,
		Obs: obs.New(obs.Options{
			TraceSample: *traceSample,
			SlowQuery:   *slowQuery,
			Logger:      slog.Default(),
		}),
	}

	var handler *server.Server
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			log.Fatalf("bepi-serve: %v", err)
		}
		g, err := bepi.ReadGraph(f)
		f.Close()
		if err != nil {
			log.Fatalf("bepi-serve: reading graph: %v", err)
		}
		start := time.Now()
		dynOpts := []bepi.Option{bepi.WithCompact(*compact)}
		if *parallelism != 0 {
			dynOpts = append(dynOpts, bepi.WithParallelism(*parallelism))
		}
		if *pinWorkers {
			dynOpts = append(dynOpts, bepi.WithPinnedWorkers(true))
		}
		if *maxHubDrift != 0 {
			dynOpts = append(dynOpts, bepi.WithMaxHubDrift(*maxHubDrift))
		}
		dyn, err := bepi.NewDynamic(g, dynOpts...)
		if err != nil {
			log.Fatalf("bepi-serve: preprocessing %s: %v", *graphPath, err)
		}
		eng := dyn.Engine()
		log.Printf("preprocessed %s (%d nodes, %d edges, %d bytes, %s layout) in %v",
			*graphPath, eng.N(), g.M(), eng.MemoryBytes(), layoutName(eng.Compacted()),
			time.Since(start).Round(time.Millisecond))
		log.Printf("dynamic mode: POST /edges buffers updates, POST /flush rebuilds in the background")
		handler = server.NewDynamic(dyn, cfg)
	} else {
		f, err := os.Open(*indexPath)
		if err != nil {
			log.Fatalf("bepi-serve: %v", err)
		}
		start := time.Now()
		eng, err := bepi.Load(f)
		f.Close()
		if err != nil {
			log.Fatalf("bepi-serve: loading index: %v", err)
		}
		// Loaded engines are compact by default; -compact=false widens them.
		if eng.Compacted() != *compact {
			eng.SetCompact(*compact)
		}
		if *pinWorkers {
			// Recorded before the executor applies -parallelism, so the
			// dedicated pool it builds comes up pinned.
			eng.Internal().SetPinWorkers(true)
		}
		log.Printf("loaded %s (%d nodes, %d bytes, %s layout) in %v",
			*indexPath, eng.N(), eng.MemoryBytes(), layoutName(eng.Compacted()),
			time.Since(start).Round(time.Millisecond))
		handler = server.NewWithConfig(eng, cfg)
	}
	xc := handler.Executor().Config()
	log.Printf("qexec: %d workers, batch ≤%d within %v, queue %d, cache %d entries, timeout %v",
		xc.Workers, xc.MaxBatch, xc.BatchWindow, xc.QueueDepth, xc.CacheEntries, xc.Timeout)
	if *slowQuery > 0 {
		log.Printf("obs: logging queries slower than %v", *slowQuery)
	}
	if *debugAddr != "" {
		dbg := pprofServer(*debugAddr)
		defer dbg.Close()
		log.Printf("obs: pprof on %s/debug/pprof/", *debugAddr)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving RWR queries on %s", *addr)

	select {
	case err := <-errc:
		// Listener failed before any shutdown signal.
		log.Fatalf("bepi-serve: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("shutting down (in-flight grace %v)", *shutdownTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("bepi-serve: shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("bepi-serve: %v", err)
		}
		handler.Close()
		log.Printf("bye")
	}
}
