// Command bepi-serve serves RWR queries from a preprocessed index over
// HTTP/JSON.
//
//	bepi-serve -index graph.idx -addr :8080
//
//	curl localhost:8080/query?seed=42&topk=10
//	curl localhost:8080/stats
//	curl -X POST localhost:8080/personalized -d '{"weights":{"3":0.5,"9":0.5}}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"bepi"
	"bepi/internal/server"
)

func main() {
	indexPath := flag.String("index", "", "index file built by `bepi preprocess` (required)")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	if *indexPath == "" {
		fmt.Fprintln(os.Stderr, "bepi-serve: -index is required")
		os.Exit(2)
	}
	f, err := os.Open(*indexPath)
	if err != nil {
		log.Fatalf("bepi-serve: %v", err)
	}
	start := time.Now()
	eng, err := bepi.Load(f)
	f.Close()
	if err != nil {
		log.Fatalf("bepi-serve: loading index: %v", err)
	}
	log.Printf("loaded %s (%d nodes, %d bytes) in %v",
		*indexPath, eng.N(), eng.MemoryBytes(), time.Since(start).Round(time.Millisecond))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(eng),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("serving RWR queries on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("bepi-serve: %v", err)
	}
}
