// Command bepi-bench regenerates the tables and figures of the BePI paper's
// evaluation on synthetic stand-in datasets.
//
//	bepi-bench list                      # show available experiments
//	bepi-bench all   [-size small]       # run every experiment
//	bepi-bench fig1  [-size full] [-seeds 30] [-csv dir]
//
// Sizes: tiny (seconds), small (a minute or two), full (the EXPERIMENTS.md
// configuration; tens of minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bepi/internal/bench"
	"bepi/internal/core"
	"bepi/internal/method"
	"bepi/internal/sparse"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if cmd == "list" {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-12s %s\n", e.Name, e.Desc)
		}
		for _, e := range bench.AblationExperiments() {
			fmt.Printf("%-12s %s\n", e.Name, e.Desc)
		}
		return
	}
	if cmd == "help" || cmd == "-h" || cmd == "--help" {
		usage()
		return
	}

	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	size := fs.String("size", "small", "suite size: tiny | small | full")
	seeds := fs.Int("seeds", 0, "query seeds per dataset (0 = size default)")
	tol := fs.Float64("tol", 1e-9, "solver tolerance")
	memBudget := fs.Int64("mem-budget", 0, "preprocessing memory budget in bytes (0 = size default)")
	deadline := fs.Duration("deadline", 0, "preprocessing deadline (0 = size default)")
	parallelism := fs.Int("parallelism", 0, "worker cap for preprocessing kernels (0 = all cores, 1 = serial)")
	compact := fs.Bool("compact", true, "use the compact CSR32 matrix layout in the kernels/serving experiments (false = wide CSR)")
	prefetch := fs.Int("prefetch", -1, "SpMV gather prefetch distance: -1 auto-calibrates, 0 disables, n > 0 fixes the lookahead")
	csvDir := fs.String("csv", "", "also write each table as CSV into this directory")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *prefetch >= 0 {
		sparse.SetPrefetchDistance(*prefetch)
	}
	layout := core.CompactOn
	if !*compact {
		layout = core.CompactOff
	}
	cfg := bench.Config{
		Size:        bench.Size(*size),
		Seeds:       *seeds,
		Tol:         *tol,
		Parallelism: *parallelism,
		Compact:     layout,
		Budget: method.Budget{
			Memory:   *memBudget,
			Deadline: *deadline,
		},
	}

	var exps []bench.Experiment
	switch {
	case cmd == "all":
		exps = bench.Experiments()
	case cmd == "ablations":
		exps = bench.AblationExperiments()
	default:
		e, ok := bench.FindExperiment(cmd)
		if !ok {
			fmt.Fprintf(os.Stderr, "bepi-bench: unknown experiment %q (try `bepi-bench list`)\n", cmd)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}

	for _, e := range exps {
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bepi-bench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		for i, t := range tables {
			if err := t.Fprint(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "bepi-bench: %v\n", err)
				os.Exit(1)
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, e.Name, i, t); err != nil {
					fmt.Fprintf(os.Stderr, "bepi-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("[%s completed in %s]\n\n", e.Name, bench.FmtDuration(time.Since(start)))
	}
}

func writeCSV(dir, exp string, idx int, t *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("%s_%d.csv", exp, idx)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

func usage() {
	var names []string
	for _, e := range bench.Experiments() {
		names = append(names, e.Name)
	}
	fmt.Fprintf(os.Stderr, `usage:
  bepi-bench list
  bepi-bench all [flags]
  bepi-bench <experiment> [flags]

experiments: %s

flags:
  -size tiny|small|full   suite size (default small)
  -seeds N                query seeds per dataset
  -tol ε                  solver tolerance (default 1e-9)
  -mem-budget BYTES       preprocessing memory budget
  -deadline DUR           preprocessing deadline (e.g. 120s)
  -parallelism N          kernel worker cap (0 = all cores, 1 = serial)
  -compact BOOL           CSR32 compact layout in kernels/serving experiments (default true)
  -csv DIR                also write tables as CSV
`, strings.Join(names, " "))
}
