// Command bepi preprocesses graphs into RWR indexes and answers queries.
//
//	bepi preprocess -graph g.txt -index g.idx [-c 0.05] [-k 0.2] [-variant bepi]
//	bepi query      -index g.idx -seed 42 [-topk 10]
//	bepi stats      -index g.idx
//
// The graph file is a whitespace-separated "src dst" edge list ('#' and '%'
// lines are comments), or a MatrixMarket coordinate file if the path ends
// in .mtx.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"bepi"
	"bepi/internal/bench"
	"bepi/internal/core"
	"bepi/internal/solver"
	"bepi/internal/vec"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "preprocess":
		err = cmdPreprocess(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "bepi: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bepi: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  bepi preprocess -graph <edge-list> -index <out> [-c 0.05] [-tol 1e-9] [-k 0.2] [-variant bepi|bepi-s|bepi-b] [-parallelism 0]
  bepi query      -index <idx> -seed <node> [-topk 10] [-all]
  bepi stats      -index <idx>
  bepi verify     -graph <edge-list> [-seeds 10] [-tol 1e-9]`)
}

func loadGraph(path string) (*bepi.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".mtx") {
		return bepi.ReadGraphMatrixMarket(f)
	}
	return bepi.ReadGraph(f)
}

func loadIndex(path string) (*bepi.Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bepi.Load(f)
}

func cmdPreprocess(args []string) error {
	fs := flag.NewFlagSet("preprocess", flag.ExitOnError)
	graphPath := fs.String("graph", "", "edge-list file (required)")
	indexPath := fs.String("index", "", "output index file (required)")
	c := fs.Float64("c", core.DefaultC, "restart probability")
	tol := fs.Float64("tol", core.DefaultTol, "solver tolerance")
	k := fs.Float64("k", 0, "hub selection ratio (0 = paper default)")
	variant := fs.String("variant", "bepi", "bepi | bepi-s | bepi-b")
	parallelism := fs.Int("parallelism", 0, "worker cap for preprocessing kernels (0 = all cores, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *indexPath == "" {
		return fmt.Errorf("-graph and -index are required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return fmt.Errorf("loading graph: %w", err)
	}
	opts := []bepi.Option{bepi.WithRestartProb(*c), bepi.WithTolerance(*tol), bepi.WithParallelism(*parallelism)}
	if *k > 0 {
		opts = append(opts, bepi.WithHubRatio(*k))
	}
	switch *variant {
	case "bepi":
		opts = append(opts, bepi.WithVariant(bepi.BePIFull))
	case "bepi-s":
		opts = append(opts, bepi.WithVariant(bepi.BePIS))
	case "bepi-b":
		opts = append(opts, bepi.WithVariant(bepi.BePIB))
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	eng, err := bepi.New(g, opts...)
	if err != nil {
		return fmt.Errorf("preprocessing: %w", err)
	}
	out, err := os.Create(*indexPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := eng.Save(out); err != nil {
		return fmt.Errorf("writing index: %w", err)
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("preprocessed %s: n=%s m=%s in %s, index %s (%s)\n",
		*graphPath, bench.FmtCount(g.N()), bench.FmtCount(g.M()),
		bench.FmtDuration(eng.PreprocessTime()), *indexPath,
		bench.FmtBytes(eng.MemoryBytes()))
	st := eng.Internal().PrepStats()
	fmt.Printf("phases (%d workers): reorder %s, build H %s, factor H11 %s, Schur %s, ILU %s\n",
		st.Workers, bench.FmtDuration(st.Reorder), bench.FmtDuration(st.BuildH),
		bench.FmtDuration(st.FactorH11), bench.FmtDuration(st.Schur),
		bench.FmtDuration(st.ILU))
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	indexPath := fs.String("index", "", "index file (required)")
	seed := fs.Int("seed", -1, "seed node (required)")
	topk := fs.Int("topk", 10, "number of results")
	all := fs.Bool("all", false, "print the full score vector instead of top-k")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" || *seed < 0 {
		return fmt.Errorf("-index and -seed are required")
	}
	eng, err := loadIndex(*indexPath)
	if err != nil {
		return fmt.Errorf("loading index: %w", err)
	}
	if *all {
		scores, st, err := eng.QueryWithStats(*seed)
		if err != nil {
			return err
		}
		for node, s := range scores {
			fmt.Printf("%d\t%.10f\n", node, s)
		}
		fmt.Fprintf(os.Stderr, "query: %s, %d iterations\n", bench.FmtDuration(st.Duration), st.Iterations)
		return nil
	}
	_, st, err := eng.QueryWithStats(*seed)
	if err != nil {
		return err
	}
	top, err := eng.TopK(*seed, *topk)
	if err != nil {
		return err
	}
	fmt.Printf("top-%d nodes for seed %d (query %s, %d iterations):\n",
		len(top), *seed, bench.FmtDuration(st.Duration), st.Iterations)
	for rank, r := range top {
		fmt.Printf("%3d. node %-10d %.8f\n", rank+1, r.Node, r.Score)
	}
	return nil
}

// cmdVerify cross-checks BePI's answers against plain power iteration on a
// sample of seeds — a self-contained correctness audit for adopters.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	graphPath := fs.String("graph", "", "edge-list file (required)")
	seeds := fs.Int("seeds", 10, "number of random seeds to check")
	tol := fs.Float64("tol", core.DefaultTol, "solver tolerance")
	c := fs.Float64("c", core.DefaultC, "restart probability")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return fmt.Errorf("loading graph: %w", err)
	}
	eng, err := bepi.New(g, bepi.WithRestartProb(*c), bepi.WithTolerance(*tol))
	if err != nil {
		return fmt.Errorf("preprocessing: %w", err)
	}
	at := core.RowNormalizedAdjacencyT(g.Internal())
	rng := rand.New(rand.NewSource(1))
	worst := 0.0
	for i := 0; i < *seeds; i++ {
		s := rng.Intn(g.N())
		got, err := eng.Query(s)
		if err != nil {
			return fmt.Errorf("seed %d: %w", s, err)
		}
		q := make([]float64, g.N())
		q[s] = 1
		want, _, err := solver.PowerIteration(at, q, *c, solver.PowerOptions{Tol: *tol / 10, MaxIter: 10000})
		if err != nil {
			return fmt.Errorf("seed %d (power): %w", s, err)
		}
		d := vec.Dist2(got, want)
		if d > worst {
			worst = d
		}
		fmt.Printf("seed %-8d L2 distance to power iteration: %.3e\n", s, d)
	}
	threshold := 100 * *tol
	if worst > threshold {
		return fmt.Errorf("worst distance %.3e exceeds %.1e", worst, threshold)
	}
	fmt.Printf("OK: %d seeds verified, worst distance %.3e (threshold %.1e)\n", *seeds, worst, threshold)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	indexPath := fs.String("index", "", "index file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" {
		return fmt.Errorf("-index is required")
	}
	eng, err := loadIndex(*indexPath)
	if err != nil {
		return fmt.Errorf("loading index: %w", err)
	}
	st := eng.Internal().PrepStats()
	opts := eng.Internal().Options()
	fmt.Printf("index: %s\n", *indexPath)
	fmt.Printf("  variant:       %s\n", opts.Variant)
	fmt.Printf("  restart prob:  %g\n", opts.C)
	fmt.Printf("  tolerance:     %g\n", opts.Tol)
	fmt.Printf("  hub ratio k:   %g\n", st.HubRatio)
	fmt.Printf("  nodes:         %s (spokes %s, hubs %s, deadends %s)\n",
		bench.FmtCount(st.N), bench.FmtCount(st.N1), bench.FmtCount(st.N2), bench.FmtCount(st.N3))
	fmt.Printf("  H11 blocks:    %s\n", bench.FmtCount(st.Blocks))
	fmt.Printf("  |S|:           %s\n", bench.FmtCount(st.SchurNNZ))
	fmt.Printf("  index size:    %s\n", bench.FmtBytes(eng.MemoryBytes()))
	if st.Total > 0 {
		fmt.Printf("  preprocessing: %s (reorder %s, build %s, factor H11 %s, Schur %s, ILU %s)\n",
			bench.FmtDuration(st.Total), bench.FmtDuration(st.Reorder),
			bench.FmtDuration(st.BuildH), bench.FmtDuration(st.FactorH11),
			bench.FmtDuration(st.Schur), bench.FmtDuration(st.ILU))
	}
	return nil
}
