GO ?= go

.PHONY: build test race race-par vet check bench bench-par

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-checks the whole module; the qexec/server concurrency stress tests
# only give real coverage under -race.
race:
	$(GO) test -race ./...

# Focused, repeated race pass over the parallel runtime and the kernels
# built on it — including the stress test of concurrent engine builds
# sharing one pool, where interleavings vary run to run.
race-par:
	$(GO) test -race -count=2 -run 'Par|Parallel|Pool|Shared|Concurrent|Nested' \
		./internal/par/ ./internal/sparse/ ./internal/lu/ ./internal/core/

# The CI gate: everything must build, vet clean, and pass under the race
# detector, with an extra repeated pass over the parallel kernels.
check: vet race race-par

bench:
	$(GO) test -run '^$$' -bench BenchmarkQexecThroughput -benchmem ./internal/qexec/

# Serial-vs-parallel kernel benchmarks (Schur build, H11 factorization,
# SpMV) across worker counts; compare the workers=1 and workers=N lines.
bench-par:
	$(GO) test -run '^$$' -bench 'BenchmarkSchurComplement|BenchmarkFactorBlockDiag' -benchmem ./internal/core/
	$(GO) test -run '^$$' -bench BenchmarkParallelMulVec -benchmem ./internal/sparse/
