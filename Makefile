GO ?= go
# Where `make profile` scrapes the CPU profile from: bepi-serve's
# -debug-addr listener.
PROFILE_ADDR ?= localhost:6060
PROFILE_SECONDS ?= 15

.PHONY: build test race race-par vet lint check bench bench-par bench-kernels bench-spmv bench-dynamic bench-serving bench-topk bench-obs profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck and govulncheck are used when
# installed (CI installs them); locally the target degrades to a note
# instead of failing on a missing tool.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Race-checks the whole module; the qexec/server concurrency stress tests
# only give real coverage under -race.
race:
	$(GO) test -race ./...

# Focused, repeated race pass over the parallel runtime and the kernels
# built on it — including the stress test of concurrent engine builds
# sharing one pool, where interleavings vary run to run — plus the obs
# histograms' record-vs-snapshot race test, the level-scheduled ILU
# triangular solves, the compact CSR32 kernel paths, and the dynamic-index
# rebuild/swap protocol (root package: concurrent queries, updates, and
# background flushes over one index), the cluster tier's routing ring
# and generation-guarded scatter-gather against concurrent engine swaps,
# and the bounded top-k search (solver StopWhen/Probe hooks, set-equality
# property tests, qexec k-class batching under concurrent load), and the
# observability layer (lock-free event ring, trace propagation across
# HTTP backends during engine swaps, histogram snapshot merging), and the
# latency-hiding kernel layer (RHS-interleaved batch multiply, the prefetch
# knob, sticky first-touch pools, the STREAM probe), and the incremental
# rebuild path (delta classification, Woodbury-corrected solves, drift
# fallback) racing concurrent queries.
race-par:
	$(GO) test -race -count=2 -run 'Par|Parallel|Pool|Shared|Concurrent|Nested|Level|CSR32|Dynamic|Swap|Panic|Ring|Cluster|Generation|TopK|StopWhen|Trace|Merge|Event|Snapshot|Interleav|Prefetch|Sticky|Stream|Delta|Woodbury|Drift' \
		. ./internal/par/ ./internal/sparse/ ./internal/lu/ ./internal/core/ \
		./internal/obs/ ./internal/qexec/ ./internal/server/ ./internal/cluster/ \
		./internal/solver/

# The CI gate: everything must build, lint clean (vet always; staticcheck/
# govulncheck when installed), and pass under the race detector, with an
# extra repeated pass over the parallel kernels.
check: lint race race-par

bench:
	$(GO) test -run '^$$' -bench BenchmarkQexecThroughput -benchmem ./internal/qexec/

# Serial-vs-parallel kernel benchmarks (Schur build, H11 factorization,
# SpMV) across worker counts; compare the workers=1 and workers=N lines.
bench-par:
	$(GO) test -run '^$$' -bench 'BenchmarkSchurComplement|BenchmarkFactorBlockDiag' -benchmem ./internal/core/
	$(GO) test -run '^$$' -bench BenchmarkParallelMulVec -benchmem ./internal/sparse/

# Smoke-run the bandwidth-lean kernel benchmarks — fused Schur operator,
# level-scheduled ILU sweeps, compact CSR32 SpMV — at a fixed small
# iteration count so CI catches kernel regressions (compile errors, panics,
# gross slowdowns) without paying for a full benchmark run.
bench-kernels:
	$(GO) test -run '^$$' -bench BenchmarkSchurOperator -benchtime=100x -benchmem ./internal/core/
	$(GO) test -run '^$$' -bench BenchmarkILUApplyLevels -benchtime=100x -benchmem ./internal/lu/
	$(GO) test -run '^$$' -bench BenchmarkCSR32MulVec -benchtime=100x -benchmem ./internal/sparse/

# Smoke-run the latency-hiding SpMV benchmarks: the RHS-interleaved batch
# kernel against its frozen row-outer baseline across widths/layouts/worker
# counts, and the gather prefetch-distance sweep. CI runs it so a batch
# kernel regression (or a prefetch path that stops compiling on some
# GOARCH) shows up immediately.
bench-spmv:
	$(GO) test -run '^$$' -bench 'BenchmarkMulVecBatchInterleaved|BenchmarkPrefetchDistance' -benchtime=20x ./internal/sparse/

# Smoke-run the dynamic-rebuild experiments on a small R-MAT graph: queries
# keep answering while a background flush re-preprocesses (in-rebuild p99
# vs a stop-the-world emulation), and the continuous-update-stream table
# flushes per-batch edge deletions through the incremental delta path. CI
# runs it so regressions that reintroduce flush blocking show up as a p99
# jump, and a delta flush silently falling back to a full rebuild shows up
# in the mode column and the vs-full ratio.
bench-dynamic:
	$(GO) run ./cmd/bepi-bench dynamic -size tiny

# Smoke-run the serving-tier experiments: steady-state qexec serving
# (throughput, latency quantiles, cache hit rate) and the sharded cluster
# coordinator at 1/2/4 in-process replicas. CI runs it so a regression in
# routing, per-replica caching, or the scatter-gather path shows up as a
# qps or hit-rate drop in the table.
bench-serving:
	$(GO) run ./cmd/bepi-bench serving -size tiny
	$(GO) run ./cmd/bepi-bench cluster -size tiny

# Smoke-run the exact top-k early-termination experiment: bounded vs
# full-tolerance ranking across engine variants, with the set-equality
# column checked on every query. CI runs it so a certificate regression
# (sets column flipping to MISMATCH) or a latency cliff shows up in the
# table.
bench-topk:
	$(GO) run ./cmd/bepi-bench topk -size tiny

# Smoke-run the observability-overhead experiment: the cluster workload
# with histograms, sampled tracing and the flight recorder on versus
# obs.Disabled. CI runs it so a change that puts allocation or locking on
# the query hot path shows up as an overhead jump in the table.
bench-obs:
	$(GO) run ./cmd/bepi-bench obs -size tiny

# Capture a CPU profile from a running bepi-serve (start it with
# -debug-addr $(PROFILE_ADDR)) and drop into the pprof shell:
#   make profile [PROFILE_ADDR=host:port] [PROFILE_SECONDS=15]
profile:
	$(GO) tool pprof -seconds $(PROFILE_SECONDS) http://$(PROFILE_ADDR)/debug/pprof/profile
