GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-checks the whole module; the qexec/server concurrency stress tests
# only give real coverage under -race.
race:
	$(GO) test -race ./...

# The CI gate: everything must build, vet clean, and pass under the race
# detector.
check: vet race

bench:
	$(GO) test -run '^$$' -bench BenchmarkQexecThroughput -benchmem ./internal/qexec/
