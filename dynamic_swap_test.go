package bepi

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDynamicNoopUpdatesCancelAtBufferTime checks that updates with no net
// effect never reach the buffer: inserting an edge that already exists,
// deleting one that does not, and an insert/delete pair of the same new
// edge all leave Pending at zero.
func TestDynamicNoopUpdatesCancelAtBufferTime(t *testing.T) {
	d, err := NewDynamic(dynGraph(t)) // edges include {0,1}; {0,3} absent
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(0, 1); err != nil { // already present
		t.Fatal(err)
	}
	if p := d.Pending(); p != 0 {
		t.Fatalf("inserting an existing edge buffered %d updates, want 0", p)
	}
	if err := d.RemoveEdge(0, 3); err != nil { // already absent
		t.Fatal(err)
	}
	if p := d.Pending(); p != 0 {
		t.Fatalf("deleting an absent edge buffered %d updates, want 0", p)
	}
	if err := d.AddEdge(0, 3); err != nil { // real work...
		t.Fatal(err)
	}
	if p := d.Pending(); p != 1 {
		t.Fatalf("pending = %d, want 1", p)
	}
	if err := d.RemoveEdge(0, 3); err != nil { // ...undone before any flush
		t.Fatal(err)
	}
	if p := d.Pending(); p != 0 {
		t.Fatalf("insert+delete of the same edge left %d pending, want 0", p)
	}
}

// TestDynamicNoopFlushKeepsGeneration checks a flush with only canceled
// no-ops in its past neither rebuilds nor swaps: same engine pointer, same
// generation, and the rebuild handle reports itself as a no-op.
func TestDynamicNoopFlushKeepsGeneration(t *testing.T) {
	d, err := NewDynamic(dynGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	engBefore, genBefore := d.Engine(), d.Generation()
	if err := d.AddEdge(0, 1); err != nil { // no-op: exists
		t.Fatal(err)
	}
	if err := d.RemoveEdge(4, 2); err != nil { // no-op: absent
		t.Fatal(err)
	}
	r := d.StartFlush()
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	st := r.Status()
	if !st.NoOp {
		t.Fatalf("flush of canceled no-ops rebuilt anyway: %+v", st)
	}
	if st.State != RebuildDone {
		t.Fatalf("state = %q, want %q", st.State, RebuildDone)
	}
	if g := d.Generation(); g != genBefore {
		t.Fatalf("no-op flush bumped generation %d -> %d", genBefore, g)
	}
	if d.Engine() != engBefore {
		t.Fatal("no-op flush replaced the engine")
	}
}

// TestDynamicFlushDoesNotBlockQueries is the acceptance check for the
// background-rebuild rework: while a flush is rebuilding a graph big
// enough to take real time, queries against the old index must keep
// completing in a small fraction of the rebuild duration — latency bounded
// by the atomic swap, not by preprocessing.
func TestDynamicFlushDoesNotBlockQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuild-timing test needs a non-trivial graph")
	}
	g := RMAT(15, 8, 42)
	d, err := NewDynamic(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Query(0); err != nil { // warm: the steady-state cost
		t.Fatal(err)
	}
	steadyStart := time.Now()
	if _, err := d.Query(1); err != nil {
		t.Fatal(err)
	}
	steady := time.Since(steadyStart)

	// Real buffered work: a brand-new node with edges cannot be a no-op.
	id := d.AddNode()
	if err := d.AddEdge(0, id); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(id, 0); err != nil {
		t.Fatal(err)
	}
	genBefore := d.Generation()

	r := d.StartFlush()
	var worst time.Duration
	queries := 0
	for r.Status().State == RebuildRunning {
		qStart := time.Now()
		if _, err := d.Query(queries % 64); err != nil {
			t.Fatal(err)
		}
		if el := time.Since(qStart); el > worst {
			worst = el
		}
		queries++
	}
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	rebuild := r.Status().Duration
	t.Logf("rebuild %v; %d queries during it, worst %v, steady %v", rebuild, queries, worst, steady)

	if g := d.Generation(); g != genBefore+1 {
		t.Fatalf("generation %d -> %d, want +1", genBefore, g)
	}
	if res, err := d.Query(id); err != nil || res[0] <= 0 {
		t.Fatalf("new node not reflected after background flush: res[0]=%v err=%v", res[0], err)
	}
	if queries == 0 || rebuild < 50*time.Millisecond {
		t.Skipf("rebuild too fast to measure blocking (%v, %d queries)", rebuild, queries)
	}
	// A stop-the-world flush would stall one query for ~the whole rebuild.
	// Allow generous slack for scheduler noise and the query's own solve
	// cost: the worst in-rebuild query must still be far from rebuild-long.
	if worst > rebuild/2 {
		t.Fatalf("query blocked %v during a %v rebuild — flush is stop-the-world again", worst, rebuild)
	}
}

// TestDynamicRaceStress hammers one dynamic index from concurrent
// queriers, updaters, and flushers. Run under -race it checks the
// snapshot/swap protocol publishes the engine safely: no torn engine, no
// failed query, and the generation only ever moves forward.
func TestDynamicRaceStress(t *testing.T) {
	g := RMAT(8, 6, 7)
	d, err := NewDynamic(g)
	if err != nil {
		t.Fatal(err)
	}
	n := d.N()
	stop := make(chan struct{})
	var firstErr atomic.Value
	fail := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, err)
		}
	}
	var lastGen atomic.Uint64
	lastGen.Store(d.Generation())

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ { // queriers
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if w%2 == 0 {
					res, err := d.Query(rng.Intn(n))
					fail(err)
					if err == nil && len(res) < n {
						t.Error("torn engine: score vector shorter than the initial graph")
						return
					}
				} else {
					_, err := d.TopK(rng.Intn(n), 5)
					fail(err)
				}
				// Generations move forward only.
				for {
					prev := lastGen.Load()
					gen := d.Generation()
					if gen < prev {
						t.Errorf("generation went backwards: %d -> %d", prev, gen)
						return
					}
					if gen == prev || lastGen.CompareAndSwap(prev, gen) {
						break
					}
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ { // updaters
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(2) == 0 {
					fail(d.AddEdge(rng.Intn(n), rng.Intn(n)))
				} else {
					fail(d.RemoveEdge(rng.Intn(n), rng.Intn(n)))
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // flusher
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			fail(d.StartFlush().Wait())
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatal(err)
	}
	// Settle: one final flush must leave a consistent index.
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Query(0); err != nil {
		t.Fatal(err)
	}
}
