package bepi

import (
	"sync"
	"testing"

	"bepi/internal/core"
	"bepi/internal/vec"
)

func dynGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraph(6, []Edge{
		{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDynamicServesStaleUntilFlush(t *testing.T) {
	g := dynGraph(t)
	d, err := NewDynamic(g, WithTolerance(1e-11))
	if err != nil {
		t.Fatal(err)
	}
	before, err := d.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(0, 5); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 1 {
		t.Fatalf("pending = %d", d.Pending())
	}
	stale, err := d.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if vec.Dist2(before, stale) != 0 {
		t.Fatal("query changed before flush")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 0 {
		t.Fatal("pending not cleared")
	}
	after, err := d.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if after[5] <= 0 {
		t.Fatal("new edge not reflected after flush")
	}
	if vec.Dist2(before, after) == 0 {
		t.Fatal("flush had no effect")
	}
}

func TestDynamicMatchesFreshEngine(t *testing.T) {
	g := dynGraph(t)
	d, err := NewDynamic(g, WithTolerance(1e-11))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := d.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh engine over the same final edge set.
	fresh, err := NewGraph(6, []Edge{
		{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 0}, {1, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(fresh, WithTolerance(1e-11))
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if dd := vec.Dist2(got, want); dd > 1e-9 {
		t.Fatalf("dynamic vs fresh distance %v", dd)
	}
	// And against the exact dense ground truth.
	exact, err := core.ExactDense(fresh.Internal(), core.DefaultC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dd := vec.Dist2(got, exact); dd > 1e-7 {
		t.Fatalf("dynamic vs exact distance %v", dd)
	}
}

func TestDynamicAddNode(t *testing.T) {
	g := dynGraph(t)
	d, err := NewDynamic(g)
	if err != nil {
		t.Fatal(err)
	}
	id := d.AddNode()
	if id != 6 || d.N() != 7 {
		t.Fatalf("AddNode id=%d N=%d", id, d.N())
	}
	if err := d.AddEdge(0, id); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(id, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := d.Query(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 7 || r[0] <= 0 {
		t.Fatalf("new node not queryable: %v", r)
	}
}

func TestDynamicEdgeValidation(t *testing.T) {
	d, err := NewDynamic(dynGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(0, 99); err == nil {
		t.Fatal("expected range error")
	}
	if err := d.RemoveEdge(-1, 0); err == nil {
		t.Fatal("expected range error")
	}
}

func TestDynamicFlushNoPendingIsCheap(t *testing.T) {
	d, err := NewDynamic(dynGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicConcurrentQueriesDuringUpdates(t *testing.T) {
	d, err := NewDynamic(dynGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.Query(0); err != nil {
				errs <- err
			}
		}()
	}
	for i := 0; i < 4; i++ {
		if err := d.AddEdge(i, (i+2)%6); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
